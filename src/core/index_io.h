// Persistence for BigIndex: saves/loads the base graph, every layer's
// configuration, summary graph, and Bisim^-1 mapping, so an index built once
// can be reused across processes ("BiG-index loads the m-th layer from the
// disk", Sec. 5.1).

#ifndef BIGINDEX_CORE_INDEX_IO_H_
#define BIGINDEX_CORE_INDEX_IO_H_

#include <iosfwd>
#include <string>

#include "core/big_index.h"
#include "graph/label_dictionary.h"
#include "util/status.h"

namespace bigindex {

/// Writes `index` to `out`. Labels are written as strings through `dict`.
Status WriteIndex(const BigIndex& index, const LabelDictionary& dict,
                  std::ostream& out);

/// Reads an index from `in`. `ontology` must be the ontology the index was
/// built with (it is not serialized; it usually ships with the dataset) and
/// must outlive the returned index.
StatusOr<BigIndex> ReadIndex(std::istream& in, LabelDictionary& dict,
                             const Ontology* ontology);

Status SaveIndexFile(const BigIndex& index, const LabelDictionary& dict,
                     const std::string& path);
StatusOr<BigIndex> LoadIndexFile(const std::string& path,
                                 LabelDictionary& dict,
                                 const Ontology* ontology);

}  // namespace bigindex

#endif  // BIGINDEX_CORE_INDEX_IO_H_
