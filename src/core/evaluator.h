// Hierarchical query processing eval_Ont (Algorithm 2, Fig. 5):
//
//   (2) generalize the query to the optimal layer m (Sec. 4.1),
//   (3) evaluate f on the summary graph G^m,
//   (4) specialize + prune the generalized answers down the hierarchy,
//       realize concrete answer graphs (Algorithms 3/4), and verify them at
//       the data layer for exact scores.
//
// Correctness contract (Thm 4.2): for rooted semantics evaluated without a
// top-k cut, the (root, score) answer set equals direct evaluation — the
// candidate root set is a superset of all true roots (Lemma 4.1 plus the
// observation that root candidates are never label-pruned), and per-root
// verification computes exact best trees on G^0. With top-k, the progressive
// specialization of Sec. 4.3.4 applies (generalized rank order guides
// specialization; Prop 5.3 motivates its accuracy).

#ifndef BIGINDEX_CORE_EVALUATOR_H_
#define BIGINDEX_CORE_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "core/answer_gen.h"
#include "core/big_index.h"
#include "core/query.h"
#include "core/search_algorithm.h"
#include "search/answer.h"
#include "util/timer.h"

namespace bigindex {

/// Options for one hierarchical evaluation.
struct EvalOptions {
  /// Weight β of the query-layer cost model (Formula 4).
  double beta = 0.5;

  /// Force evaluation at a specific layer (Fig. 19's per-layer sweeps);
  /// -1 = pick the optimal layer via the cost model. A forced layer that
  /// violates Def 4.1 falls back to the highest feasible layer below it.
  int forced_layer = -1;

  /// Return only the best k answers; 0 = all. With k > 0 the evaluator
  /// specializes generalized answers progressively in rank order and stops
  /// once k answers are verified (Sec. 4.3.4).
  size_t top_k = 0;

  /// Algorithm 3/4 switches (Fig. 17/18 ablations).
  AnswerGenOptions answer_gen;

  /// Exact mode (default): every candidate is completed/verified on the data
  /// graph by f's VerifyCandidate, which is what guarantees Thm 4.2 set
  /// equality. Fast mode (false) follows the paper's implementation instead:
  /// realized answers inherit their generalized scores (justified by
  /// Prop 5.3's distance-equality argument) and skip per-candidate data-graph
  /// work; it is faster but inherits Prop 5.3's corner cases (a realized
  /// answer's true score can be lower than its generalized path lengths).
  bool exact_verification = true;

  /// Cooperative cancellation: the evaluator polls this deadline at its
  /// checkpoints (before the summary-graph exploration, per generalized
  /// answer, and per candidate verification) and gives up at the first
  /// expired check. An evaluation that expires returns *no* answers — never
  /// a partial set — and raises EvalBreakdown::deadline_expired so callers
  /// (QueryEngine, the serving layer) can map it to DeadlineExceeded.
  /// Default: never expires. Not part of the query's semantic identity —
  /// the answer cache excludes it from its key.
  Deadline deadline;
};

/// Per-phase timing and counters — the breakdown reported in Figs. 10–14.
struct EvalBreakdown {
  size_t layer = 0;                  // layer the query ran on
  double explore_ms = 0;             // f on the summary graph
  double specialize_ms = 0;          // Steps 2–4 (Spec + Prop 4.1 pruning)
  double generate_ms = 0;            // Step 5 (Algorithms 3/4)
  double verify_ms = 0;              // exact completion at layer 0
  size_t generalized_answers = 0;    // |A^m|
  size_t pruned_answers = 0;         // dropped by candidate filtering
  size_t candidate_roots = 0;        // roots sent to verification
  size_t final_answers = 0;
  bool deadline_expired = false;     // gave up at a deadline checkpoint
  AnswerGenStats gen_stats;
};

/// Evaluates `keywords` through the index with plugged-in algorithm `f`
/// (eval_Ont(G, Q, f)). `index`, `f`, and `ctx` are borrowed. Re-entrant:
/// concurrent calls over the same index/algorithm are safe as long as each
/// call gets its own QueryContext.
std::vector<Answer> EvaluateWithIndex(const BigIndex& index,
                                      const KeywordSearchAlgorithm& f,
                                      const std::vector<LabelId>& keywords,
                                      const EvalOptions& options,
                                      QueryContext& ctx,
                                      EvalBreakdown* breakdown = nullptr);

/// Convenience overload running on a throwaway context.
std::vector<Answer> EvaluateWithIndex(const BigIndex& index,
                                      const KeywordSearchAlgorithm& f,
                                      const std::vector<LabelId>& keywords,
                                      const EvalOptions& options = {},
                                      EvalBreakdown* breakdown = nullptr);

}  // namespace bigindex

#endif  // BIGINDEX_CORE_EVALUATOR_H_
