#include "core/answer_gen.h"

#include <algorithm>
#include <numeric>

namespace bigindex {
namespace {

/// Directed adjacency of the generalized answer graph over positions:
/// fwd[p][q] iff (vertices[p] -> vertices[q]) is an edge of G^m.
struct AnswerTopology {
  size_t size = 0;
  std::vector<uint8_t> fwd;  // row-major size x size

  bool Fwd(size_t p, size_t q) const { return fwd[p * size + q] != 0; }
  bool Adjacent(size_t p, size_t q) const { return Fwd(p, q) || Fwd(q, p); }

  size_t UndirectedDegree(size_t p) const {
    size_t d = 0;
    for (size_t q = 0; q < size; ++q) {
      if (q != p && Adjacent(p, q)) ++d;
    }
    return d;
  }
};

AnswerTopology BuildTopology(const Graph& layer_graph,
                             const std::vector<VertexId>& vertices) {
  AnswerTopology topo;
  topo.size = vertices.size();
  topo.fwd.assign(topo.size * topo.size, 0);
  for (size_t p = 0; p < topo.size; ++p) {
    for (size_t q = 0; q < topo.size; ++q) {
      if (p != q && layer_graph.HasEdge(vertices[p], vertices[q])) {
        topo.fwd[p * topo.size + q] = 1;
      }
    }
  }
  return topo;
}

/// Checks Def 4.2's edge condition between an assigned position pair.
bool EdgesRealized(const Graph& g0, const AnswerTopology& topo, size_t p,
                   VertexId vp, size_t q, VertexId vq) {
  if (topo.Fwd(p, q) && !g0.HasEdge(vp, vq)) return false;
  if (topo.Fwd(q, p) && !g0.HasEdge(vq, vp)) return false;
  return true;
}

/// Converts a full position assignment into an Answer skeleton (score 0; the
/// evaluator verifies and scores exactly).
Answer AssignmentToAnswer(const SpecializedAnswer& spec,
                          const std::vector<VertexId>& assignment,
                          size_t num_keywords) {
  Answer a;
  a.vertices = assignment;
  a.keyword_vertices.assign(num_keywords, kInvalidVertex);
  for (size_t p = 0; p < assignment.size(); ++p) {
    int k = spec.keyword_of[p];
    if (k != kNoKeyword) a.keyword_vertices[k] = assignment[p];
  }
  a.root = spec.root_position >= 0 ? assignment[spec.root_position]
                                   : kInvalidVertex;
  CanonicalizeAnswer(a);
  return a;
}

}  // namespace

SpecializedAnswer SpecializeAnswer(const BigIndex& index,
                                   const Answer& generalized, size_t m,
                                   const std::vector<LabelId>& keywords) {
  SpecializedAnswer spec;
  spec.generalized = generalized;
  spec.layer = m;
  const size_t num_pos = generalized.vertices.size();
  spec.candidates.resize(num_pos);
  spec.keyword_of.assign(num_pos, kNoKeyword);

  for (size_t p = 0; p < num_pos; ++p) {
    VertexId gv = generalized.vertices[p];
    if (generalized.root != kInvalidVertex && gv == generalized.root) {
      spec.root_position = static_cast<int>(p);
    }
    for (size_t k = 0; k < generalized.keyword_vertices.size(); ++k) {
      if (generalized.keyword_vertices[k] == gv) {
        spec.keyword_of[p] = static_cast<int>(k);
        break;  // Def 4.1: generalized keywords are distinct labels
      }
    }

    // Layer-by-layer specialization (Algorithm 2 Step 2) with candidate
    // filtering for keyword nodes (Prop 4.1 / isKey of Sec. 4.3.1): a
    // specialized vertex survives only if its label equals the keyword's
    // generalization at that layer.
    std::vector<VertexId> current{gv};
    for (size_t l = m; l >= 1; --l) {
      std::vector<VertexId> next;
      for (VertexId u : current) {
        auto members = index.SpecializeVertex(u, l);
        next.insert(next.end(), members.begin(), members.end());
      }
      if (spec.keyword_of[p] != kNoKeyword) {
        LabelId want = index.GeneralizeLabel(
            keywords[spec.keyword_of[p]], l - 1);
        const Graph& lower = index.LayerGraph(l - 1);
        std::erase_if(next, [&](VertexId v) { return lower.label(v) != want; });
      }
      std::sort(next.begin(), next.end());
      current = std::move(next);
      if (current.empty()) break;
    }
    if (current.empty() && spec.keyword_of[p] != kNoKeyword) {
      spec.pruned_empty = true;
    }
    spec.candidates[p] = std::move(current);
  }

  // Root candidates: plain Bisim^-1 chain without keyword filtering.
  if (spec.root_position >= 0) {
    std::vector<VertexId> current{generalized.root};
    for (size_t l = m; l >= 1; --l) {
      std::vector<VertexId> next;
      for (VertexId u : current) {
        auto members = index.SpecializeVertex(u, l);
        next.insert(next.end(), members.begin(), members.end());
      }
      current = std::move(next);
    }
    std::sort(current.begin(), current.end());
    spec.root_candidates = std::move(current);
  }
  return spec;
}

std::vector<Answer> GenerateAnswersVertexBased(const BigIndex& index,
                                               const SpecializedAnswer& spec,
                                               const AnswerGenOptions& options,
                                               AnswerGenStats* stats) {
  std::vector<Answer> out;
  const size_t num_pos = spec.candidates.size();
  if (num_pos == 0 || spec.pruned_empty) return out;
  for (const auto& c : spec.candidates) {
    if (c.empty()) return out;  // nothing can realize this position
  }
  const Graph& g0 = index.base();
  AnswerTopology topo =
      BuildTopology(index.LayerGraph(spec.layer), spec.generalized.vertices);

  // Specialization order (Sec. 4.3.2): ascending |χ^-1(a_i)|.
  std::vector<size_t> order(num_pos);
  std::iota(order.begin(), order.end(), 0);
  if (options.use_specialization_order) {
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return spec.candidates[a].size() < spec.candidates[b].size();
    });
  }

  // Partial answers: assignments over the full position range with
  // kInvalidVertex for not-yet-specialized positions (Algorithm 3's G_par).
  std::vector<std::vector<VertexId>> partials{
      std::vector<VertexId>(num_pos, kInvalidVertex)};
  for (size_t step = 0; step < num_pos && !partials.empty(); ++step) {
    size_t p = order[step];
    std::vector<std::vector<VertexId>> next;
    bool capped = false;
    for (const auto& partial : partials) {
      for (VertexId v : spec.candidates[p]) {
        bool ok = true;
        for (size_t t = 0; t < step && ok; ++t) {
          size_t q = order[t];
          ok = EdgesRealized(g0, topo, p, v, q, partial[q]);
        }
        if (!ok) continue;
        if (next.size() >= options.max_partial_answers) {
          capped = true;
          break;
        }
        next.push_back(partial);
        next.back()[p] = v;
        if (stats) ++stats->partial_answers_created;
      }
      if (capped) break;
    }
    if (capped && stats) ++stats->cap_hits;
    partials = std::move(next);
  }

  out.reserve(partials.size());
  for (const auto& assignment : partials) {
    out.push_back(AssignmentToAnswer(
        spec, assignment, spec.generalized.keyword_vertices.size()));
    if (stats) ++stats->realizations;
  }
  return out;
}

namespace {

/// One decomposition path: a sequence of positions. Consecutive positions
/// are adjacent in the answer topology; endpoints are joints, leaves, or
/// cycle break-points; singletons cover isolated positions.
using PositionPath = std::vector<size_t>;

/// Step 1 of Algorithm 4 (answer_decomposition): split the generalized
/// answer graph into paths at its joint vertices (undirected degree > 2).
std::vector<PositionPath> DecomposeIntoPaths(const AnswerTopology& topo) {
  const size_t n = topo.size;
  std::vector<size_t> degree(n);
  std::vector<uint8_t> is_endpoint(n, 0);
  for (size_t p = 0; p < n; ++p) {
    degree[p] = topo.UndirectedDegree(p);
    // Endpoints: leaves (deg <= 1) and joint vertices (deg > 2).
    is_endpoint[p] = degree[p] <= 1 || degree[p] > 2;
  }

  // used[p][q]: undirected edge (p, q) already covered by a path.
  std::vector<uint8_t> used(n * n, 0);
  auto mark = [&](size_t p, size_t q) {
    used[p * n + q] = used[q * n + p] = 1;
  };
  auto unused_neighbor = [&](size_t p) -> size_t {
    for (size_t q = 0; q < n; ++q) {
      if (q != p && topo.Adjacent(p, q) && !used[p * n + q]) return q;
    }
    return n;
  };

  std::vector<PositionPath> paths;
  auto walk_from = [&](size_t start) {
    for (size_t first = unused_neighbor(start); first != n;
         first = unused_neighbor(start)) {
      PositionPath path{start, first};
      mark(start, first);
      size_t cur = first;
      while (!is_endpoint[cur]) {
        size_t nxt = unused_neighbor(cur);
        if (nxt == n) break;  // closed back into the path
        mark(cur, nxt);
        path.push_back(nxt);
        cur = nxt;
      }
      paths.push_back(std::move(path));
    }
  };

  for (size_t p = 0; p < n; ++p) {
    if (is_endpoint[p]) walk_from(p);
  }
  // Leftover degree-2 cycles without endpoints: break at the smallest
  // position and walk around.
  for (size_t p = 0; p < n; ++p) {
    if (unused_neighbor(p) != n) walk_from(p);
  }
  // Isolated positions become singleton paths.
  for (size_t p = 0; p < n; ++p) {
    if (degree[p] == 0) paths.push_back({p});
  }
  return paths;
}

}  // namespace

std::vector<Answer> GenerateAnswersPathBased(const BigIndex& index,
                                             const SpecializedAnswer& spec,
                                             const AnswerGenOptions& options,
                                             AnswerGenStats* stats) {
  std::vector<Answer> out;
  const size_t num_pos = spec.candidates.size();
  if (num_pos == 0 || spec.pruned_empty) return out;
  for (const auto& c : spec.candidates) {
    if (c.empty()) return out;
  }
  const Graph& g0 = index.base();
  AnswerTopology topo =
      BuildTopology(index.LayerGraph(spec.layer), spec.generalized.vertices);
  std::vector<PositionPath> paths = DecomposeIntoPaths(topo);

  // Keyword-bearing, small-candidate paths first (Sec. 4.3.3: keyword paths
  // are selective and keep intermediate partial sets small).
  auto path_weight = [&](const PositionPath& path) {
    size_t total = 0;
    bool has_kw = false;
    for (size_t p : path) {
      total += spec.candidates[p].size();
      has_kw |= spec.keyword_of[p] != kNoKeyword;
    }
    return std::make_pair(has_kw ? 0 : 1, total);
  };
  if (options.use_specialization_order) {
    std::stable_sort(paths.begin(), paths.end(),
                     [&](const PositionPath& a, const PositionPath& b) {
                       return path_weight(a) < path_weight(b);
                     });
  }

  // Step 2: specialize one path at a time; Step 3: join partial answers at
  // joint vertices (Def 4.3 — shared positions must agree).
  std::vector<std::vector<VertexId>> partials{
      std::vector<VertexId>(num_pos, kInvalidVertex)};
  for (const PositionPath& path : paths) {
    // Realize this path: all concrete sequences respecting chain edges.
    std::vector<std::vector<VertexId>> seqs{{}};
    for (size_t step = 0; step < path.size(); ++step) {
      size_t p = path[step];
      std::vector<std::vector<VertexId>> next;
      for (const auto& seq : seqs) {
        for (VertexId v : spec.candidates[p]) {
          if (step > 0 &&
              !EdgesRealized(g0, topo, p, v, path[step - 1],
                             seq[step - 1])) {
            continue;
          }
          // Cycle paths revisit their break-point position: both visits
          // must pick the same concrete vertex.
          bool consistent = true;
          for (size_t t = 0; t < step && consistent; ++t) {
            if (path[t] == p) consistent = seq[t] == v;
          }
          if (!consistent) continue;
          if (next.size() >= options.max_partial_answers) break;
          next.push_back(seq);
          next.back().push_back(v);
          if (stats) ++stats->partial_answers_created;
        }
      }
      if (next.size() >= options.max_partial_answers && stats) {
        ++stats->cap_hits;
      }
      seqs = std::move(next);
      if (seqs.empty()) break;
    }
    if (seqs.empty()) return out;  // no realization of this path at all

    // Join with accumulated partials (Def 4.3 path qualification: agree on
    // already-assigned shared positions; they are joints by construction).
    std::vector<std::vector<VertexId>> joined;
    bool capped = false;
    for (const auto& partial : partials) {
      for (const auto& seq : seqs) {
        bool ok = true;
        for (size_t step = 0; step < path.size() && ok; ++step) {
          VertexId assigned = partial[path[step]];
          ok = assigned == kInvalidVertex || assigned == seq[step];
        }
        // Cross-path chord edges between this path's fresh vertices and
        // previously assigned positions are validated pairwise.
        for (size_t step = 0; step < path.size() && ok; ++step) {
          size_t p = path[step];
          if (partial[p] != kInvalidVertex) continue;  // shared, checked
          for (size_t q = 0; q < num_pos && ok; ++q) {
            if (partial[q] == kInvalidVertex) continue;
            ok = EdgesRealized(g0, topo, p, seq[step], q, partial[q]);
          }
        }
        if (!ok) continue;
        if (joined.size() >= options.max_partial_answers) {
          capped = true;
          break;
        }
        joined.push_back(partial);
        for (size_t step = 0; step < path.size(); ++step) {
          joined.back()[path[step]] = seq[step];
        }
        if (stats) ++stats->partial_answers_created;
      }
      if (capped) break;
    }
    if (capped && stats) ++stats->cap_hits;
    partials = std::move(joined);
    if (partials.empty()) return out;
  }

  out.reserve(partials.size());
  for (const auto& assignment : partials) {
    out.push_back(AssignmentToAnswer(
        spec, assignment, spec.generalized.keyword_vertices.size()));
    if (stats) ++stats->realizations;
  }
  return out;
}

}  // namespace bigindex
