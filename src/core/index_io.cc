#include "core/index_io.h"

#include <fstream>
#include <sstream>

#include "graph/graph_io.h"

namespace bigindex {
namespace {

constexpr char kMagic[] = "bigindex-index v1";

bool NextRecord(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

Status WriteIndex(const BigIndex& index, const LabelDictionary& dict,
                  std::ostream& out) {
  out << kMagic << "\n" << index.NumLayers() << "\n";
  BIGINDEX_RETURN_IF_ERROR(WriteGraph(index.base(), dict, out));
  for (size_t m = 1; m <= index.NumLayers(); ++m) {
    const IndexLayer& layer = index.Layer(m);
    out << "layer " << m << "\n";
    out << "config " << layer.config.mappings().size() << "\n";
    for (const LabelMapping& mapping : layer.config.mappings()) {
      out << dict.Name(mapping.from) << "\t" << dict.Name(mapping.to) << "\n";
    }
    const size_t lower_n = index.LayerGraph(m - 1).NumVertices();
    out << "mapping " << lower_n << " " << layer.graph.NumVertices() << "\n";
    for (VertexId v = 0; v < lower_n; ++v) {
      out << layer.mapping.SuperOf(v) << (v + 1 == lower_n ? "\n" : " ");
    }
    if (lower_n == 0) out << "\n";
    BIGINDEX_RETURN_IF_ERROR(WriteGraph(layer.graph, dict, out));
  }
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

StatusOr<BigIndex> ReadIndex(std::istream& in, LabelDictionary& dict,
                             const Ontology* ontology) {
  std::string line;
  if (!NextRecord(in, line) || line != kMagic) {
    return Status::Corruption("missing index header");
  }
  if (!NextRecord(in, line)) return Status::Corruption("missing layer count");
  size_t num_layers = 0;
  {
    std::istringstream ss(line);
    if (!(ss >> num_layers)) return Status::Corruption("bad layer count");
  }
  auto base = ReadGraph(in, dict);
  if (!base.ok()) return base.status();

  std::vector<IndexLayer> layers;
  size_t lower_n = base->NumVertices();
  for (size_t m = 1; m <= num_layers; ++m) {
    if (!NextRecord(in, line) || line.rfind("layer ", 0) != 0) {
      return Status::Corruption("missing layer marker");
    }
    if (!NextRecord(in, line) || line.rfind("config ", 0) != 0) {
      return Status::Corruption("missing config marker");
    }
    size_t num_mappings = 0;
    {
      std::istringstream ss(line.substr(7));
      if (!(ss >> num_mappings)) return Status::Corruption("bad config size");
    }
    IndexLayer layer;
    for (size_t i = 0; i < num_mappings; ++i) {
      if (!NextRecord(in, line)) {
        return Status::Corruption("truncated config");
      }
      size_t tab = line.find('\t');
      if (tab == std::string::npos) {
        return Status::Corruption("config line missing tab");
      }
      LabelId from = dict.Intern(std::string_view(line).substr(0, tab));
      LabelId to = dict.Intern(std::string_view(line).substr(tab + 1));
      BIGINDEX_RETURN_IF_ERROR(layer.config.AddMapping(from, to));
    }
    if (!NextRecord(in, line) || line.rfind("mapping ", 0) != 0) {
      return Status::Corruption("missing mapping marker");
    }
    size_t map_n = 0, num_supers = 0;
    {
      std::istringstream ss(line.substr(8));
      if (!(ss >> map_n >> num_supers)) {
        return Status::Corruption("bad mapping sizes");
      }
    }
    if (map_n != lower_n) {
      return Status::Corruption("mapping domain size mismatch");
    }
    std::vector<VertexId> assignment(map_n);
    if (map_n > 0) {
      if (!NextRecord(in, line)) {
        return Status::Corruption("truncated mapping");
      }
      std::istringstream ss(line);
      for (size_t v = 0; v < map_n; ++v) {
        uint64_t s = 0;
        if (!(ss >> s) || s >= num_supers) {
          return Status::Corruption("bad mapping entry");
        }
        assignment[v] = static_cast<VertexId>(s);
      }
    }
    layer.mapping = BisimMapping(std::move(assignment), num_supers);
    auto graph = ReadGraph(in, dict);
    if (!graph.ok()) return graph.status();
    layer.graph = std::move(graph).value();
    lower_n = layer.graph.NumVertices();
    layers.push_back(std::move(layer));
  }
  return BigIndex::FromParts(std::move(base).value(), ontology,
                             std::move(layers));
}

Status SaveIndexFile(const BigIndex& index, const LabelDictionary& dict,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  return WriteIndex(index, dict, out);
}

StatusOr<BigIndex> LoadIndexFile(const std::string& path,
                                 LabelDictionary& dict,
                                 const Ontology* ontology) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ReadIndex(in, dict, ontology);
}

}  // namespace bigindex
