#include "core/evaluator.h"

#include <algorithm>
#include <unordered_set>

#include "engine/query_context.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace bigindex {
namespace {

size_t ResolveLayer(const BigIndex& index,
                    const std::vector<LabelId>& keywords,
                    const EvalOptions& options) {
  if (options.forced_layer < 0) {
    return OptimalQueryLayer(index, keywords, options.beta);
  }
  size_t m = std::min<size_t>(options.forced_layer, index.NumLayers());
  while (m > 0 && !QueryDistinctAtLayer(index, keywords, m)) --m;
  return m;
}

}  // namespace

std::vector<Answer> EvaluateWithIndex(const BigIndex& index,
                                      const KeywordSearchAlgorithm& f,
                                      const std::vector<LabelId>& keywords,
                                      const EvalOptions& options,
                                      QueryContext& ctx,
                                      EvalBreakdown* breakdown) {
  EvalBreakdown local;
  EvalBreakdown& bd = breakdown ? *breakdown : local;
  std::vector<Answer> final_answers;
  if (keywords.empty()) return final_answers;

  // Deadline checkpoint: expiry abandons the evaluation with *no* answers
  // (callers must never see a partial set) and flags the breakdown. Free when
  // no deadline was set (Expired() is branch-only for Never()).
  auto expired = [&]() {
    if (!options.deadline.Expired()) return false;
    bd.deadline_expired = true;
    final_answers.clear();
    return true;
  };
  if (expired()) return final_answers;

  const size_t m = ResolveLayer(index, keywords, options);
  bd.layer = m;
  const Graph& g0 = index.base();

  // Layer 0: hierarchical machinery degenerates to direct evaluation.
  if (m == 0) {
    TRACE_SPAN("eval/explore");
    Timer t;
    final_answers = f.Evaluate(g0, keywords, ctx);
    bd.explore_ms = t.ElapsedMillis();
    if (options.top_k != 0 && final_answers.size() > options.top_k) {
      final_answers.resize(options.top_k);
    }
    bd.final_answers = final_answers.size();
    return final_answers;
  }

  // (3) Evaluate f on the summary graph with the generalized query.
  Timer timer;
  std::vector<LabelId> qm = index.GeneralizeKeywords(keywords, m);
  std::vector<Answer> generalized;
  {
    TRACE_SPAN("eval/explore");
    generalized = f.Evaluate(index.LayerGraph(m), qm, ctx);
  }
  bd.explore_ms = timer.ElapsedMillis();
  bd.generalized_answers = generalized.size();
  SortAnswers(generalized);  // rank order drives progressive specialization

  const bool rooted = f.IsRooted();
  std::unordered_set<VertexId>& verified_roots = ctx.VertexSet();
  std::unordered_set<std::string>& emitted_keys = ctx.KeySet();  // r-clique
  std::string& key = ctx.KeyBuffer();

  // (4)+(5): progressive specialization in generalized rank order
  // (Sec. 4.3.4): with top-k we stop as soon as k answers are verified.
  for (const Answer& am : generalized) {
    if (expired()) return final_answers;
    timer.Restart();
    SpecializedAnswer spec = [&] {
      TRACE_SPAN("eval/specialize");
      return SpecializeAnswer(index, am, m, keywords);
    }();
    bd.specialize_ms += timer.ElapsedMillis();
    if (spec.pruned_empty && !rooted) {
      ++bd.pruned_answers;
      continue;
    }

    timer.Restart();
    std::vector<Answer> realized = [&] {
      TRACE_SPAN("eval/generate");
      return options.answer_gen.use_path_based
                 ? GenerateAnswersPathBased(index, spec, options.answer_gen,
                                            &bd.gen_stats)
                 : GenerateAnswersVertexBased(index, spec, options.answer_gen,
                                              &bd.gen_stats);
    }();
    bd.generate_ms += timer.ElapsedMillis();

    timer.Restart();
    if (!options.exact_verification) {
      // Fast mode (paper implementation): realized answers keep the
      // generalized score (Prop 5.3). Dedup by root / keyword assignment in
      // generalized rank order.
      for (Answer& cand : realized) {
        if (rooted) {
          if (!verified_roots.insert(cand.root).second) continue;
        } else {
          key.clear();
          for (VertexId v : cand.keyword_vertices) {
            key += std::to_string(v);
            key += ',';
          }
          if (!emitted_keys.insert(key).second) continue;
        }
        cand.score = am.score;
        final_answers.push_back(std::move(cand));
      }
      bd.verify_ms += timer.ElapsedMillis();
      if (options.top_k != 0 && final_answers.size() >= options.top_k) break;
      continue;
    }
    TRACE_SPAN("eval/verify");
    if (rooted) {
      // Candidate roots: every layer-0 specialization of the generalized
      // root (root candidates are never label-pruned — this is what makes
      // the root set complete, Lemma 4.1). Realizations contribute the same
      // roots; the union is taken implicitly.
      if (spec.root_position >= 0) {
        for (VertexId r : spec.root_candidates) {
          if (!verified_roots.insert(r).second) continue;
          if (expired()) return final_answers;
          ++bd.candidate_roots;
          Answer candidate;
          candidate.root = r;
          if (auto exact = f.VerifyCandidate(g0, keywords, candidate, ctx)) {
            final_answers.push_back(std::move(*exact));
          }
        }
      }
    } else {
      // Lazy verification (Sec. 4.3.4 spirit): candidates arrive in
      // generalized rank order; with a top-k request stop verifying as soon
      // as k answers pass — verification BFS on the data graph is the
      // expensive step for distance semantics.
      for (const Answer& cand : realized) {
        if (options.top_k != 0 && final_answers.size() >= options.top_k) {
          break;
        }
        key.clear();
        for (VertexId v : cand.keyword_vertices) {
          key += std::to_string(v);
          key += ',';
        }
        if (!emitted_keys.insert(key).second) continue;
        if (expired()) return final_answers;
        ++bd.candidate_roots;
        if (auto exact = f.VerifyCandidate(g0, keywords, cand, ctx)) {
          final_answers.push_back(std::move(*exact));
        }
      }
    }
    bd.verify_ms += timer.ElapsedMillis();

    if (options.top_k != 0 && final_answers.size() >= options.top_k) break;
  }

  SortAnswers(final_answers);
  if (options.top_k != 0 && final_answers.size() > options.top_k) {
    final_answers.resize(options.top_k);
  }
  bd.final_answers = final_answers.size();
  return final_answers;
}

std::vector<Answer> EvaluateWithIndex(const BigIndex& index,
                                      const KeywordSearchAlgorithm& f,
                                      const std::vector<LabelId>& keywords,
                                      const EvalOptions& options,
                                      EvalBreakdown* breakdown) {
  QueryContext ctx;
  return EvaluateWithIndex(index, f, keywords, options, ctx, breakdown);
}

}  // namespace bigindex
