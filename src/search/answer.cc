#include "search/answer.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace bigindex {

bool AnswerLess(const Answer& a, const Answer& b) {
  if (a.score != b.score) return a.score < b.score;
  if (a.root != b.root) return a.root < b.root;
  return a.keyword_vertices < b.keyword_vertices;
}

void SortAnswers(std::vector<Answer>& answers) {
  std::sort(answers.begin(), answers.end(), AnswerLess);
}

void CanonicalizeAnswer(Answer& a) {
  std::sort(a.vertices.begin(), a.vertices.end());
  a.vertices.erase(std::unique(a.vertices.begin(), a.vertices.end()),
                   a.vertices.end());
}

std::string AnswerToString(const Answer& a) {
  std::ostringstream out;
  out << "root=";
  if (a.root == kInvalidVertex) {
    out << "-";
  } else {
    out << a.root;
  }
  out << " score=" << a.score << " kw=[";
  for (size_t i = 0; i < a.keyword_vertices.size(); ++i) {
    if (i) out << ",";
    out << a.keyword_vertices[i];
  }
  out << "] V={";
  for (size_t i = 0; i < a.vertices.size(); ++i) {
    if (i) out << ",";
    out << a.vertices[i];
  }
  out << "}";
  return out.str();
}

bool AnswerIsConnected(const Graph& g, const Answer& a) {
  if (a.vertices.empty()) return true;
  std::unordered_set<VertexId> in_answer(a.vertices.begin(),
                                         a.vertices.end());
  std::vector<VertexId> stack{a.vertices.front()};
  std::unordered_set<VertexId> seen{a.vertices.front()};
  const CsrView out = g.Out(), in = g.In();
  while (!stack.empty()) {
    VertexId u = stack.back();
    stack.pop_back();
    auto visit = [&](VertexId w) {
      if (in_answer.count(w) && seen.insert(w).second) stack.push_back(w);
    };
    const auto oi = out[u];
    for (uint64_t i = oi.begin; i < oi.end; ++i) visit(out.Slot(i));
    const auto ii = in[u];
    for (uint64_t i = ii.begin; i < ii.end; ++i) visit(in.Slot(i));
  }
  return seen.size() == a.vertices.size();
}

}  // namespace bigindex
