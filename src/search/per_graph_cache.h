// Address-reuse-safe cache of per-graph derived structures.
//
// BlinksAlgorithm and RCliqueAlgorithm build an auxiliary index per graph
// (distance blocks, neighbor lists) and cache it so one algorithm object can
// serve many queries. Keying such a cache by `const Graph*` is a lifetime
// trap: graphs are values, and after one dies the allocator may hand its
// address to an unrelated graph, silently resurrecting a stale entry (the
// CsrDifferential suite hits exactly this by evaluating hundreds of
// short-lived graphs through one algorithm object).
//
// PerGraphCache instead keys on the graph's out-offsets array — stable under
// Graph moves/copies, distinct per layer even when layers share one storage
// arena — and validates each hit against a weak_ptr of the graph's storage
// handle. A recycled address therefore misses (the old storage is dead or a
// different owner) and the entry is rebuilt.

#ifndef BIGINDEX_SEARCH_PER_GRAPH_CACHE_H_
#define BIGINDEX_SEARCH_PER_GRAPH_CACHE_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "graph/graph.h"

namespace bigindex {

template <typename T>
class PerGraphCache {
 public:
  /// Returns the cached structure for `g`, building it with `build` on a
  /// miss (or a stale hit). `build` returns std::unique_ptr<T>; nullptr
  /// means "infeasible" and is returned without being cached, so a later
  /// call may retry. Thread-safe; the returned pointer stays valid while
  /// `g`'s storage is alive and this cache is not cleared.
  template <typename BuildFn>
  const T* GetOrBuild(const Graph& g, BuildFn&& build) {
    const void* key = g.OutOffsets().data();
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it != map_.end() && SameOwner(it->second.storage, g.storage())) {
      return it->second.value.get();
    }
    std::unique_ptr<T> value = build();
    if (value == nullptr) return nullptr;
    if (map_.size() >= kPruneThreshold) Prune();
    Entry& e = map_[key];
    e.storage = g.storage();
    e.value = std::move(value);
    return e.value.get();
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
  }

 private:
  struct Entry {
    std::weak_ptr<const void> storage;
    std::unique_ptr<T> value;
  };

  // Entries whose graphs died are garbage; sweep them before growing past a
  // handful (real deployments cache one index's worth of layers).
  static constexpr size_t kPruneThreshold = 64;

  static bool SameOwner(const std::weak_ptr<const void>& a,
                        const StorageHandle& b) {
    return !a.owner_before(b) && !b.owner_before(a);
  }

  void Prune() {
    const std::weak_ptr<const void> null_owner;
    for (auto it = map_.begin(); it != map_.end();) {
      // expired() is also true for a null storage handle (default-constructed
      // Graph, no control block); those entries stay valid forever, so only
      // drop expired entries that had a real owner.
      const auto& s = it->second.storage;
      bool is_null = !s.owner_before(null_owner) && !null_owner.owner_before(s);
      if (s.expired() && !is_null) {
        it = map_.erase(it);
      } else {
        ++it;
      }
    }
  }

  std::mutex mutex_;
  std::unordered_map<const void*, Entry> map_;
};

}  // namespace bigindex

#endif  // BIGINDEX_SEARCH_PER_GRAPH_CACHE_H_
