// r-clique keyword search (Kargar & An, VLDB'11; paper Sec. 5.2 "Distance-
// based Keyword Search" / dkws).
//
// Semantics: an answer picks one vertex per query keyword such that every
// pair of picked vertices is within r hops of each other (distances are
// symmetric — we use the undirected view, as r-cliques are defined over
// mutual proximity). Answers are ranked by weight = Σ pairwise distances;
// top-k answers are produced by the 2-approximate greedy best-answer
// procedure plus Lawler-style search-space decomposition, exactly the
// structure summarized in the paper's "Initialization / Search space
// decomposition / Termination" steps.
//
// Distance index: the neighbor list of Kargar & An — for every vertex, all
// vertices within r hops with their distances. Its memory is O(|V| * m̄)
// and famously explodes (the paper estimates 16 TB on IMDB);
// EstimateMemoryBytes() reproduces that estimate and Build() fails with
// FailedPrecondition when a caller-set budget would be exceeded, which is the
// behaviour the paper reports ("r-clique can not handle the IMDB dataset").

#ifndef BIGINDEX_SEARCH_RCLIQUE_H_
#define BIGINDEX_SEARCH_RCLIQUE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/search_algorithm.h"
#include "engine/query_context.h"
#include "graph/graph.h"
#include "search/answer.h"
#include "search/per_graph_cache.h"
#include "util/random.h"
#include "util/status.h"

namespace bigindex {

/// Options for r-clique search.
struct RCliqueOptions {
  /// Pairwise distance bound (the paper's experiments use R = 4).
  uint32_t r = 4;

  /// Number of answers to produce; 0 returns every answer the decomposition
  /// enumerates (exponential in theory — use only on small graphs/tests).
  size_t top_k = 10;

  /// Budget for the neighbor index in bytes; Build fails beyond it.
  size_t memory_budget_bytes = SIZE_MAX;
};

/// The neighbor list of Kargar & An: per-vertex (vertex, distance) pairs for
/// all vertices within r hops in the undirected view.
class NeighborIndex {
 public:
  /// Builds the index; fails with FailedPrecondition if the estimated size
  /// exceeds `memory_budget_bytes`.
  static StatusOr<NeighborIndex> Build(const Graph& g, uint32_t r,
                                       size_t memory_budget_bytes = SIZE_MAX);

  /// Undirected distance from u to v if <= r, else kInfDistance. O(log d̄).
  uint32_t Distance(VertexId u, VertexId v) const;

  /// All (vertex, distance) pairs within r hops of u, sorted by vertex id.
  std::span<const std::pair<VertexId, uint32_t>> Neighborhood(
      VertexId u) const {
    return {entries_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
  }

  size_t NumEntries() const { return entries_.size(); }
  size_t MemoryBytes() const {
    return entries_.size() * sizeof(entries_[0]) +
           offsets_.size() * sizeof(offsets_[0]);
  }

  /// Estimates the full index size by sampling `samples` vertices; this is
  /// how we reproduce the paper's "16 TB on IMDB" infeasibility estimate
  /// without building the index.
  static size_t EstimateMemoryBytes(const Graph& g, uint32_t r,
                                    size_t samples, Rng& rng);

 private:
  std::vector<uint64_t> offsets_;
  std::vector<std::pair<VertexId, uint32_t>> entries_;
};

/// Search diagnostics.
struct RCliqueStats {
  size_t spaces_explored = 0;
  size_t candidates_scored = 0;
};

/// Runs r-clique with a prebuilt neighbor index; scratch comes from `ctx`.
std::vector<Answer> RCliqueSearch(const Graph& g, const NeighborIndex& index,
                                  const std::vector<LabelId>& keywords,
                                  const RCliqueOptions& options,
                                  QueryContext& ctx,
                                  RCliqueStats* stats = nullptr);

/// Convenience overload running on a throwaway context.
std::vector<Answer> RCliqueSearch(const Graph& g, const NeighborIndex& index,
                                  const std::vector<LabelId>& keywords,
                                  const RCliqueOptions& options,
                                  RCliqueStats* stats = nullptr);

/// Exhaustive exact enumeration of all valid r-clique answers (every keyword
/// tuple with pairwise distance <= r), ranked by weight. Exponential — for
/// tests and tiny graphs only.
std::vector<Answer> RCliqueEnumerateAll(const Graph& g,
                                        const NeighborIndex& index,
                                        const std::vector<LabelId>& keywords,
                                        uint32_t r);

/// Adapter implementing the pluggable `f` interface; neighbor indexes are
/// built lazily per graph and cached by storage identity (not graph address
/// — see search/per_graph_cache.h; mutex-guarded, so one algorithm object
/// may serve concurrent queries). The verification ball cache lives in the
/// QueryContext — per query strand, lock-free.
class RCliqueAlgorithm final : public KeywordSearchAlgorithm {
 public:
  explicit RCliqueAlgorithm(RCliqueOptions options = {})
      : options_(options) {}

  using KeywordSearchAlgorithm::Evaluate;
  using KeywordSearchAlgorithm::VerifyCandidate;

  std::string_view Name() const override { return "r-clique"; }

  std::vector<Answer> Evaluate(const Graph& g,
                               const std::vector<LabelId>& keywords,
                               QueryContext& ctx) const override;

  bool IsRooted() const override { return false; }

  // The anchor is an answer's smallest keyword vertex. Picks are pairwise
  // within r (so within r of the anchor), and scoring consults witness
  // paths of length <= r between picks, whose vertices are within
  // r + r = 2r of the anchor.
  uint32_t LocalityRadius() const override { return 2 * options_.r; }

  /// Checks the candidate's keyword assignment: labels must match the query
  /// and all pairwise undirected distances must be <= r (verified by bounded
  /// BFS on `g` — no neighbor index needed at the data layer, mirroring
  /// boost-dkws which only builds the neighbor list on the query layer).
  /// The bounded undirected r-balls around keyword vertices are cached in
  /// `ctx` and shared across the many candidates one query verifies
  /// (candidates draw from small vertex pools, so hit rates are high).
  std::optional<Answer> VerifyCandidate(const Graph& g,
                                        const std::vector<LabelId>& keywords,
                                        const Answer& candidate,
                                        QueryContext& ctx) const override;

  const RCliqueOptions& options() const { return options_; }

  void ClearCache() const;

 private:
  RCliqueOptions options_;
  mutable PerGraphCache<NeighborIndex> cache_;
};

}  // namespace bigindex

#endif  // BIGINDEX_SEARCH_RCLIQUE_H_
