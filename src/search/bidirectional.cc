#include "search/bidirectional.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <queue>

#include "search/bkws.h"

namespace bigindex {
namespace {

/// Priority-queue entry of the spreading-activation expansion.
struct Frontier {
  double activation;
  uint32_t dist;
  VertexId vertex;
  uint32_t cone;  // keyword index

  bool operator<(const Frontier& other) const {
    // max-heap on activation; deterministic tie-breaks.
    if (activation != other.activation) return activation < other.activation;
    if (dist != other.dist) return dist > other.dist;
    if (vertex != other.vertex) return vertex > other.vertex;
    return cone > other.cone;
  }
};

}  // namespace

std::vector<Answer> BidirectionalSearch(const Graph& g,
                                        const std::vector<LabelId>& keywords,
                                        const BidirectionalOptions& options,
                                        QueryContext& ctx,
                                        BidirectionalStats* stats) {
  std::vector<Answer> answers;
  const size_t nq = keywords.size();
  if (nq == 0 || nq > 32 || g.NumVertices() == 0) return answers;

  // Per-cone distance tables from context scratch (exact distances emerge
  // because expansion is monotone per cone: activation is a strictly
  // decreasing function of distance within one cone, so pops happen in BFS
  // order per cone). The scratch queue records first-touched vertices so the
  // invariant is restored in O(touched) on every exit path.
  std::vector<ConeScratch*> cones(nq);
  for (size_t i = 0; i < nq; ++i) cones[i] = &ctx.Cone(i, g.NumVertices());
  struct ConeLease {
    std::vector<ConeScratch*>& cones;
    ~ConeLease() {
      for (ConeScratch* s : cones) s->Release();
    }
  } lease{cones};

  std::priority_queue<Frontier> backward;
  for (size_t i = 0; i < nq; ++i) {
    auto origins = g.VerticesWithLabel(keywords[i]);
    if (origins.empty()) return answers;  // some keyword is unmatchable
    double base = 1.0 / static_cast<double>(origins.size());
    ConeScratch& s = *cones[i];
    for (VertexId v : origins) {
      s.queue.push_back(v);
      s.dist[v] = 0;
      s.witness[v] = v;
      s.parent[v] = v;
      backward.push({base, 0, v, static_cast<uint32_t>(i)});
    }
  }

  std::vector<uint32_t>& covered = ctx.ZeroedVertexArray(0, g.NumVertices());
  const uint32_t full_mask = nq == 32 ? 0xFFFFFFFFu : ((1u << nq) - 1);

  // Backward spreading activation. A forward phase re-prioritizes vertices
  // that some cone already reached (they are candidate roots): their
  // remaining in-edges are explored eagerly so partially-covered roots
  // complete early. Exhaustive within d_max, so the distinct-root answer set
  // is exactly bkws's.
  const CsrView in = g.In();
  while (!backward.empty()) {
    Frontier f = backward.top();
    backward.pop();
    ConeScratch& s = *cones[f.cone];
    if (s.dist[f.vertex] != f.dist) continue;  // stale entry
    if (stats) {
      if (covered[f.vertex] != 0) {
        ++stats->forward_pops;
      } else {
        ++stats->backward_pops;
      }
    }
    covered[f.vertex] |= (1u << f.cone);
    if (f.dist >= options.d_max) continue;
    // Forward-boosting: vertices already covered by other cones propagate
    // with a boosted activation so their completion is prioritized.
    double boost = covered[f.vertex] == (1u << f.cone) ? 1.0 : 2.0;
    const auto [begin, end] = in[f.vertex];
    for (uint64_t idx = begin; idx < end; ++idx) {
      VertexId u = in.Slot(idx);
      // Dijkstra-style relaxation: activation order is not BFS order (the
      // forward boost can promote deeper entries), so shorter paths found
      // later must overwrite earlier tentative distances.
      if (f.dist + 1 > s.dist[u]) continue;
      if (f.dist + 1 == s.dist[u]) {
        // Equal-length alternative: adopt the lexicographically smallest
        // (witness, parent). Pop order depends on activation (origin-set
        // size, forward boosts), which is not a component-local quantity —
        // a "first relaxation wins" tie-break would materialize different
        // trees for the same component depending on what else is in the
        // graph. Taking the least fixed point over the shortest-path DAG
        // makes the tree a pure function of the component, so sharded and
        // monolithic evaluation produce identical answers. Improvements
        // re-enter the queue to propagate downstream; each vertex's pair
        // strictly decreases per update, so this terminates.
        if (std::pair(s.witness[f.vertex], f.vertex) <
            std::pair(s.witness[u], s.parent[u])) {
          s.witness[u] = s.witness[f.vertex];
          s.parent[u] = f.vertex;
          backward.push({f.activation * options.decay * boost, f.dist + 1, u,
                         f.cone});
        }
        continue;
      }
      if (s.dist[u] == kInfDistance) s.queue.push_back(u);  // first touch
      s.dist[u] = f.dist + 1;
      s.witness[u] = s.witness[f.vertex];
      s.parent[u] = f.vertex;
      backward.push({f.activation * options.decay * boost, f.dist + 1, u,
                     f.cone});
    }
  }

  // Every complete root was touched by cone 0, so its queue (the touched
  // list) is a superset of the roots; answer order is normalized below.
  for (VertexId r : cones[0]->queue) {
    if (covered[r] != full_mask) continue;
    Answer a;
    a.root = r;
    a.vertices.push_back(r);
    for (size_t i = 0; i < nq; ++i) {
      const ConeScratch& s = *cones[i];
      a.score += s.dist[r];
      a.keyword_vertices.push_back(s.witness[r]);
      if (options.materialize_paths) {
        VertexId v = r;
        while (v != s.witness[v]) {
          v = s.parent[v];
          a.vertices.push_back(v);
        }
      } else {
        a.vertices.push_back(s.witness[r]);
      }
    }
    CanonicalizeAnswer(a);
    answers.push_back(std::move(a));
  }

  SortAnswers(answers);
  if (options.top_k != 0 && answers.size() > options.top_k) {
    answers.resize(options.top_k);
  }
  return answers;
}

std::vector<Answer> BidirectionalSearch(const Graph& g,
                                        const std::vector<LabelId>& keywords,
                                        const BidirectionalOptions& options,
                                        BidirectionalStats* stats) {
  QueryContext ctx;
  return BidirectionalSearch(g, keywords, options, ctx, stats);
}

std::optional<Answer> BidirectionalAlgorithm::VerifyCandidate(
    const Graph& g, const std::vector<LabelId>& keywords,
    const Answer& candidate, QueryContext& ctx) const {
  return CompleteRootedAnswer(g, keywords, candidate.root, options_.d_max,
                              options_.materialize_paths, ctx);
}

}  // namespace bigindex
