// Blinks — ranked keyword search with a bi-level index (He et al., SIGMOD'07;
// paper Sec. 5.3 "Ranked Keyword Search" / rkws).
//
// Semantics: distinct-root top-k. An answer root r must reach, within d_max
// hops, one vertex per query keyword; its score is Σ_i dist(r, p_i) (lower is
// better); at most one answer (the best) per root; the k best roots win.
//
// Index (bi-level, Sec. 5.3 "Index construction"): the graph is partitioned
// into blocks (paper: METIS, avg block 1000 — here a BFS partitioner, see
// partitioner.h); per block we store keyword-node lists / node-keyword maps
// restricted to the block (distance from each block vertex to each keyword
// present in the block), plus the keyword -> blocks list and portal set. The
// single-level variant (global node-keyword map) is O(|V|^2) and "infeasible
// for large graphs" per the paper; MemoryBytes()/SingleLevelMemoryEstimate()
// expose both numbers.
//
// Search: per-keyword backward expansion ("expanding backward" of Sec. 5.3)
// in round-robin increasing-frontier order, candidate roots checked against
// the node-keyword maps, and sound early termination once the k best complete
// roots provably beat every incomplete or undiscovered root. Results are
// exact — equal to exhaustive enumeration — which the tests verify. Search
// scratch (cone arrays, masks, root lists) lives in the QueryContext.

#ifndef BIGINDEX_SEARCH_BLINKS_H_
#define BIGINDEX_SEARCH_BLINKS_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/search_algorithm.h"
#include "engine/query_context.h"
#include "graph/graph.h"
#include "search/answer.h"
#include "search/per_graph_cache.h"
#include "search/partitioner.h"

namespace bigindex {

/// Options for Blinks search and index construction.
struct BlinksOptions {
  /// Pruning threshold τ_prune of He et al.; the paper's experiments use 5.
  uint32_t d_max = 5;

  /// Number of answers to return; 0 = all answer roots (used by the
  /// equivalence tests; benchmarks use the paper's top-k setting).
  size_t top_k = 0;

  /// Target block size for the partitioner (paper: average 1000).
  size_t block_size = 1000;

  /// Include root-to-keyword path vertices in answers (needed by BiG-index
  /// answer generation).
  bool materialize_paths = true;
};

/// The bi-level index of Sec. 5.3, built once per graph.
class BlinksIndex {
 public:
  /// Builds the index: partition + per-block node-keyword maps + keyword ->
  /// blocks lists + portals.
  static BlinksIndex Build(const Graph& g, size_t block_size);

  /// In-block distance from v to the nearest vertex labeled `label` within
  /// v's block; kInfDistance if none. This is the node-keyword map lookup.
  uint32_t InBlockKeywordDistance(VertexId v, LabelId label) const;

  /// Blocks containing at least one `label` vertex (keyword -> block list).
  std::span<const uint32_t> BlocksWithKeyword(LabelId label) const;

  const Partition& partition() const { return partition_; }
  std::span<const VertexId> portals() const { return portals_; }

  /// Actual memory of the bi-level structures, in bytes (approximate).
  size_t MemoryBytes() const { return memory_bytes_; }

  /// What the single-level index (global node-keyword map) would need:
  /// |V| * |distinct labels| * entry size. The paper calls this infeasible.
  static size_t SingleLevelMemoryEstimate(const Graph& g);

 private:
  Partition partition_;
  std::vector<VertexId> portals_;
  // node_keyword_[b] : label -> (vertex -> in-block distance).
  std::vector<std::unordered_map<
      LabelId, std::unordered_map<VertexId, uint32_t>>>
      node_keyword_;
  std::unordered_map<LabelId, std::vector<uint32_t>> keyword_blocks_;
  size_t memory_bytes_ = 0;
};

/// Search diagnostics (exposed for the paper's breakdown figures).
struct BlinksStats {
  size_t vertices_popped = 0;   // cone expansion work
  size_t levels_expanded = 0;   // round-robin rounds
  size_t probes = 0;            // node-keyword map lookups
  bool early_terminated = false;
};

/// Runs Blinks on `g` with a prebuilt index; scratch comes from `ctx`.
std::vector<Answer> BlinksSearch(const Graph& g, const BlinksIndex& index,
                                 const std::vector<LabelId>& keywords,
                                 const BlinksOptions& options,
                                 QueryContext& ctx,
                                 BlinksStats* stats = nullptr);

/// Convenience overload running on a throwaway context.
std::vector<Answer> BlinksSearch(const Graph& g, const BlinksIndex& index,
                                 const std::vector<LabelId>& keywords,
                                 const BlinksOptions& options,
                                 BlinksStats* stats = nullptr);

/// Adapter implementing the pluggable `f` interface. Indexes are built lazily
/// per graph and cached (BiG-index evaluates the same layer graphs
/// repeatedly); the cache is keyed by storage identity, not graph address —
/// see search/per_graph_cache.h — and is mutex-guarded, so one algorithm
/// object may serve concurrent queries over short-lived graphs safely.
class BlinksAlgorithm final : public KeywordSearchAlgorithm {
 public:
  explicit BlinksAlgorithm(BlinksOptions options = {}) : options_(options) {}

  using KeywordSearchAlgorithm::Evaluate;
  using KeywordSearchAlgorithm::VerifyCandidate;

  std::string_view Name() const override { return "blinks"; }

  std::vector<Answer> Evaluate(const Graph& g,
                               const std::vector<LabelId>& keywords,
                               QueryContext& ctx) const override;

  bool IsRooted() const override { return true; }

  // Every answer vertex lies on a root->keyword path of length <= d_max.
  uint32_t LocalityRadius() const override { return options_.d_max; }

  std::optional<Answer> VerifyCandidate(const Graph& g,
                                        const std::vector<LabelId>& keywords,
                                        const Answer& candidate,
                                        QueryContext& ctx) const override;

  const BlinksOptions& options() const { return options_; }

  /// Drops cached per-graph indexes.
  void ClearCache() const;

 private:
  BlinksOptions options_;
  mutable PerGraphCache<BlinksIndex> cache_;
};

}  // namespace bigindex

#endif  // BIGINDEX_SEARCH_BLINKS_H_
