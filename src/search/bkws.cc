#include "search/bkws.h"

#include <algorithm>
#include <unordered_map>

namespace bigindex {
namespace {

/// Per-keyword backward BFS result: distance, witness keyword vertex, and
/// the next hop on a shortest path toward the witness.
struct BackwardCone {
  std::vector<uint32_t> dist;       // kInfDistance if unreached
  std::vector<VertexId> witness;    // keyword vertex this distance leads to
  std::vector<VertexId> next_hop;   // successor on the path to witness
};

BackwardCone ExpandBackward(const Graph& g, LabelId keyword,
                            uint32_t d_max) {
  const size_t n = g.NumVertices();
  BackwardCone cone;
  cone.dist.assign(n, kInfDistance);
  cone.witness.assign(n, kInvalidVertex);
  cone.next_hop.assign(n, kInvalidVertex);

  std::vector<VertexId> queue;
  for (VertexId v : g.VerticesWithLabel(keyword)) {
    cone.dist[v] = 0;
    cone.witness[v] = v;
    cone.next_hop[v] = v;
    queue.push_back(v);
  }
  size_t head = 0;
  while (head < queue.size()) {
    VertexId v = queue[head++];
    uint32_t d = cone.dist[v];
    if (d >= d_max) continue;
    // Backward expansion: u -> v means u reaches the keyword through v.
    for (VertexId u : g.InNeighbors(v)) {
      if (cone.dist[u] != kInfDistance) continue;
      cone.dist[u] = d + 1;
      cone.witness[u] = cone.witness[v];
      cone.next_hop[u] = v;
      queue.push_back(u);
    }
  }
  return cone;
}

// Appends the vertices of the shortest path root -> witness recorded in cone
// (excluding the root itself, including the witness).
void AppendPath(const BackwardCone& cone, VertexId root,
                std::vector<VertexId>& out) {
  VertexId v = root;
  while (v != cone.witness[v]) {
    v = cone.next_hop[v];
    out.push_back(v);
  }
}

}  // namespace

std::optional<Answer> CompleteRootedAnswer(
    const Graph& g, const std::vector<LabelId>& keywords, VertexId root,
    uint32_t d_max, bool materialize_paths) {
  if (root >= g.NumVertices() || keywords.empty()) return std::nullopt;
  const size_t nq = keywords.size();

  // Forward bounded BFS from the root with parent tracking.
  std::unordered_map<VertexId, std::pair<uint32_t, VertexId>> info;  // v -> (dist, parent)
  std::vector<VertexId> queue{root};
  info.emplace(root, std::make_pair(0u, root));
  // Best (dist, vertex) per keyword, tie-broken by smallest vertex id.
  std::vector<std::pair<uint32_t, VertexId>> best(
      nq, {kInfDistance, kInvalidVertex});
  auto consider = [&](VertexId v, uint32_t d) {
    LabelId l = g.label(v);
    for (size_t i = 0; i < nq; ++i) {
      if (keywords[i] == l && std::make_pair(d, v) < best[i]) {
        best[i] = {d, v};
      }
    }
  };
  consider(root, 0);
  size_t head = 0;
  while (head < queue.size()) {
    VertexId v = queue[head++];
    uint32_t d = info.at(v).first;
    if (d >= d_max) continue;
    for (VertexId w : g.OutNeighbors(v)) {
      if (info.count(w)) continue;
      info.emplace(w, std::make_pair(d + 1, v));
      consider(w, d + 1);
      queue.push_back(w);
    }
  }
  for (const auto& [d, v] : best) {
    if (d == kInfDistance) return std::nullopt;
  }

  Answer a;
  a.root = root;
  a.vertices.push_back(root);
  for (const auto& [d, v] : best) {
    a.score += d;
    a.keyword_vertices.push_back(v);
    if (materialize_paths) {
      VertexId x = v;
      while (x != root) {
        a.vertices.push_back(x);
        x = info.at(x).second;
      }
    } else {
      a.vertices.push_back(v);
    }
  }
  CanonicalizeAnswer(a);
  return a;
}

std::vector<Answer> BackwardKeywordSearch(const Graph& g,
                                          const std::vector<LabelId>& keywords,
                                          const BkwsOptions& options) {
  std::vector<Answer> answers;
  if (keywords.empty() || g.NumVertices() == 0) return answers;

  // One backward cone per keyword. Expanding the smallest V_qi first (the
  // classical heuristic) does not change the result set; we simply expand
  // all — each cone is one bounded BFS.
  std::vector<BackwardCone> cones;
  cones.reserve(keywords.size());
  for (LabelId q : keywords) {
    cones.push_back(ExpandBackward(g, q, options.d_max));
  }

  // Answer discovery: roots reached by every cone.
  for (VertexId r = 0; r < g.NumVertices(); ++r) {
    uint32_t score = 0;
    bool covered = true;
    for (const BackwardCone& cone : cones) {
      if (cone.dist[r] == kInfDistance) {
        covered = false;
        break;
      }
      score += cone.dist[r];
    }
    if (!covered) continue;

    Answer a;
    a.root = r;
    a.score = score;
    a.vertices.push_back(r);
    for (const BackwardCone& cone : cones) {
      a.keyword_vertices.push_back(cone.witness[r]);
      if (options.materialize_paths) {
        AppendPath(cone, r, a.vertices);
      } else {
        a.vertices.push_back(cone.witness[r]);
      }
    }
    CanonicalizeAnswer(a);
    answers.push_back(std::move(a));
  }

  SortAnswers(answers);
  if (options.top_k != 0 && answers.size() > options.top_k) {
    answers.resize(options.top_k);
  }
  return answers;
}

}  // namespace bigindex
