#include "search/bkws.h"

#include <algorithm>

namespace bigindex {
namespace {

/// Releases an acquired ConeScratch on scope exit (early returns included).
struct ScratchLease {
  ConeScratch& scratch;
  ~ScratchLease() { scratch.Release(); }
};

/// Bounded backward BFS for `keyword` into `scratch`: dist / witness /
/// parent (= next hop toward the witness) per reached vertex; the scratch
/// queue records exactly the touched vertices.
void ExpandBackward(const Graph& g, LabelId keyword, uint32_t d_max,
                    ConeScratch& s) {
  for (VertexId v : g.VerticesWithLabel(keyword)) {
    s.dist[v] = 0;
    s.witness[v] = v;
    s.parent[v] = v;
    s.queue.push_back(v);
  }
  const CsrView in = g.In();
  size_t head = 0;
  while (head < s.queue.size()) {
    VertexId v = s.queue[head++];
    uint32_t d = s.dist[v];
    if (d >= d_max) continue;
    // Backward expansion: u -> v means u reaches the keyword through v.
    const auto [begin, end] = in[v];
    for (uint64_t i = begin; i < end; ++i) {
      VertexId u = in.Slot(i);
      if (s.dist[u] != kInfDistance) continue;
      s.dist[u] = d + 1;
      s.witness[u] = s.witness[v];
      s.parent[u] = v;
      s.queue.push_back(u);
    }
  }
}

// Appends the vertices of the shortest path root -> witness recorded in the
// cone (excluding the root itself, including the witness).
void AppendPath(const ConeScratch& cone, VertexId root,
                std::vector<VertexId>& out) {
  VertexId v = root;
  while (v != cone.witness[v]) {
    v = cone.parent[v];
    out.push_back(v);
  }
}

}  // namespace

std::optional<Answer> CompleteRootedAnswer(
    const Graph& g, const std::vector<LabelId>& keywords, VertexId root,
    uint32_t d_max, bool materialize_paths, QueryContext& ctx) {
  if (root >= g.NumVertices() || keywords.empty()) return std::nullopt;
  const size_t nq = keywords.size();

  // Forward bounded BFS from the root with parent tracking.
  ConeScratch& s = ctx.Cone(0, g.NumVertices());
  ScratchLease lease{s};
  s.dist[root] = 0;
  s.parent[root] = root;
  s.queue.push_back(root);
  // Best (dist, vertex) per keyword, tie-broken by smallest vertex id.
  auto& best = ctx.BestPerKeyword();
  best.assign(nq, {kInfDistance, kInvalidVertex});
  auto consider = [&](VertexId v, uint32_t d) {
    LabelId l = g.label(v);
    for (size_t i = 0; i < nq; ++i) {
      if (keywords[i] == l && std::make_pair(d, v) < best[i]) {
        best[i] = {d, v};
      }
    }
  };
  consider(root, 0);
  const CsrView out = g.Out();
  size_t head = 0;
  while (head < s.queue.size()) {
    VertexId v = s.queue[head++];
    uint32_t d = s.dist[v];
    if (d >= d_max) continue;
    const auto [begin, end] = out[v];
    for (uint64_t i = begin; i < end; ++i) {
      VertexId w = out.Slot(i);
      if (s.dist[w] != kInfDistance) continue;
      s.dist[w] = d + 1;
      s.parent[w] = v;
      consider(w, d + 1);
      s.queue.push_back(w);
    }
  }
  for (const auto& [d, v] : best) {
    if (d == kInfDistance) return std::nullopt;
  }

  Answer a;
  a.root = root;
  a.vertices.push_back(root);
  for (const auto& [d, v] : best) {
    a.score += d;
    a.keyword_vertices.push_back(v);
    if (materialize_paths) {
      VertexId x = v;
      while (x != root) {
        a.vertices.push_back(x);
        x = s.parent[x];
      }
    } else {
      a.vertices.push_back(v);
    }
  }
  CanonicalizeAnswer(a);
  return a;
}

std::optional<Answer> CompleteRootedAnswer(
    const Graph& g, const std::vector<LabelId>& keywords, VertexId root,
    uint32_t d_max, bool materialize_paths) {
  QueryContext ctx;
  return CompleteRootedAnswer(g, keywords, root, d_max, materialize_paths,
                              ctx);
}

std::vector<Answer> BackwardKeywordSearch(const Graph& g,
                                          const std::vector<LabelId>& keywords,
                                          const BkwsOptions& options,
                                          QueryContext& ctx) {
  std::vector<Answer> answers;
  if (keywords.empty() || g.NumVertices() == 0) return answers;
  const size_t nq = keywords.size();

  // One backward cone per keyword, each on its own context slot. Expanding
  // the smallest V_qi first (the classical heuristic) does not change the
  // result set; we simply expand all — each cone is one bounded BFS.
  std::vector<ConeScratch*> cones;
  cones.reserve(nq);
  for (size_t i = 0; i < nq; ++i) {
    ConeScratch& s = ctx.Cone(i, g.NumVertices());
    ExpandBackward(g, keywords[i], options.d_max, s);
    cones.push_back(&s);
  }

  // Answer discovery: roots reached by every cone. The first (arbitrary)
  // cone's touched set is a superset of all roots, so scan it instead of
  // every vertex of the graph.
  for (VertexId r : cones[0]->queue) {
    uint32_t score = 0;
    bool covered = true;
    for (const ConeScratch* cone : cones) {
      if (cone->dist[r] == kInfDistance) {
        covered = false;
        break;
      }
      score += cone->dist[r];
    }
    if (!covered) continue;

    Answer a;
    a.root = r;
    a.score = score;
    a.vertices.push_back(r);
    for (const ConeScratch* cone : cones) {
      a.keyword_vertices.push_back(cone->witness[r]);
      if (options.materialize_paths) {
        AppendPath(*cone, r, a.vertices);
      } else {
        a.vertices.push_back(cone->witness[r]);
      }
    }
    CanonicalizeAnswer(a);
    answers.push_back(std::move(a));
  }
  for (ConeScratch* cone : cones) cone->Release();

  SortAnswers(answers);
  if (options.top_k != 0 && answers.size() > options.top_k) {
    answers.resize(options.top_k);
  }
  return answers;
}

std::vector<Answer> BackwardKeywordSearch(const Graph& g,
                                          const std::vector<LabelId>& keywords,
                                          const BkwsOptions& options) {
  QueryContext ctx;
  return BackwardKeywordSearch(g, keywords, options, ctx);
}

}  // namespace bigindex
