// Graph partitioning for the Blinks bi-level index (Sec. 5.3).
//
// The paper uses METIS with an average block size of 1000. METIS is not
// available offline, so we substitute a BFS-grown greedy partitioner over the
// undirected view of the graph: repeatedly seed an unassigned vertex and grow
// a block breadth-first until it reaches the target size. Blinks only needs
// blocks that are connected-ish and bounded in size — partition quality moves
// constants, not trends (see DESIGN.md, Substitutions).

#ifndef BIGINDEX_SEARCH_PARTITIONER_H_
#define BIGINDEX_SEARCH_PARTITIONER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace bigindex {

/// A disjoint block cover of the vertex set.
class Partition {
 public:
  Partition() = default;
  Partition(std::vector<uint32_t> block_of, size_t num_blocks);

  uint32_t BlockOf(VertexId v) const { return block_of_[v]; }
  size_t NumBlocks() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  size_t NumVertices() const { return block_of_.size(); }

  /// Vertices of block b, ascending.
  std::span<const VertexId> BlockMembers(uint32_t b) const {
    return {members_.data() + offsets_[b], offsets_[b + 1] - offsets_[b]};
  }

 private:
  std::vector<uint32_t> block_of_;
  std::vector<uint64_t> offsets_;  // CSR over blocks
  std::vector<VertexId> members_;
};

/// BFS-grown partition with blocks of at most `target_block_size` vertices.
Partition PartitionGraph(const Graph& g, size_t target_block_size);

/// Portal vertices of a partition: vertices with at least one edge (in either
/// direction) crossing into another block. Returned sorted ascending.
std::vector<VertexId> ComputePortals(const Graph& g,
                                     const Partition& partition);

}  // namespace bigindex

#endif  // BIGINDEX_SEARCH_PARTITIONER_H_
