// Graph partitioning: Blinks blocks and the shard substrate's graph sharder.
//
// Two consumers share this module:
//
//   * The Blinks bi-level index (Sec. 5.3) needs size-bounded, connected-ish
//     blocks. The paper uses METIS with an average block size of 1000; METIS
//     is not available offline, so we substitute a BFS-grown greedy
//     partitioner over the undirected view of the graph (partition quality
//     moves constants, not trends — see DESIGN.md, Substitutions).
//
//   * The shard substrate (src/shard/, DESIGN.md §9) needs a *disjoint shard
//     cover* of the vertex set plus the manifest of edges its cut severs.
//     PlanShards packs connectivity units (whole weakly-connected components
//     in the default answer-preserving mode, BFS blocks in the general mode)
//     onto N shards with a deterministic longest-processing-time greedy, and
//     ExtractShard materializes one shard's vertex-induced subgraph with an
//     order-preserving local<->global vertex remap.

#ifndef BIGINDEX_SEARCH_PARTITIONER_H_
#define BIGINDEX_SEARCH_PARTITIONER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/status.h"

namespace bigindex {

/// A disjoint block cover of the vertex set.
class Partition {
 public:
  Partition() = default;
  Partition(std::vector<uint32_t> block_of, size_t num_blocks);

  uint32_t BlockOf(VertexId v) const { return block_of_[v]; }
  size_t NumBlocks() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  size_t NumVertices() const { return block_of_.size(); }

  /// Vertices of block b, ascending.
  std::span<const VertexId> BlockMembers(uint32_t b) const {
    return {members_.data() + offsets_[b], offsets_[b + 1] - offsets_[b]};
  }

 private:
  std::vector<uint32_t> block_of_;
  std::vector<uint64_t> offsets_;  // CSR over blocks
  std::vector<VertexId> members_;
};

/// BFS-grown partition with blocks of at most `target_block_size` vertices.
Partition PartitionGraph(const Graph& g, size_t target_block_size);

/// Portal vertices of a partition: vertices with at least one edge (in either
/// direction) crossing into another block. Returned sorted ascending.
std::vector<VertexId> ComputePortals(const Graph& g,
                                     const Partition& partition);

// ---------------------------------------------------------------------------
// Graph sharder (shard substrate, DESIGN.md §9)
// ---------------------------------------------------------------------------

/// How the sharder carves the graph into per-shard vertex sets.
enum class ShardMode {
  /// Pack whole weakly-connected components onto shards. No edge is ever
  /// cut (the boundary manifest is empty by construction), so every
  /// connected answer lives entirely inside one shard and scatter-gather
  /// results are *exactly* the monolithic results for every search
  /// semantics. Balance is best-effort: a giant component caps it.
  kConnectivityClosed,

  /// Pack BFS-grown blocks (PartitionGraph) onto shards. Balanced cuts on
  /// any graph shape. Cut edges are recorded in the manifest and
  /// materialized into BOTH incident shards via ghost vertices (the
  /// off-shard endpoint is replicated read-only), so block-local search
  /// plus the coordinator's boundary completion pass (DESIGN.md §9)
  /// reproduces the monolithic answer set exactly for algorithms with a
  /// declared locality radius.
  kBfsBlocks,
};

/// Knobs for PlanShards.
struct ShardPlanOptions {
  /// Number of shards (>= 1). Shards may end up empty when the graph has
  /// fewer packing units than shards.
  size_t num_shards = 1;

  ShardMode mode = ShardMode::kConnectivityClosed;

  /// Packing granularity for kBfsBlocks (ignored in connectivity-closed
  /// mode): target vertex count of the BFS blocks handed to the packer.
  size_t bfs_block_size = 256;
};

/// One severed edge of the shard cut, in global vertex ids.
struct CutEdge {
  VertexId source = 0;
  VertexId target = 0;

  friend bool operator==(const CutEdge&, const CutEdge&) = default;
};

/// A disjoint shard cover of the vertex set plus the boundary-edge manifest
/// of the cut. Every vertex belongs to exactly one shard; the manifest lists
/// every edge whose endpoints land on different shards (empty in
/// connectivity-closed mode), sorted by (source, target).
class ShardPlan {
 public:
  ShardPlan() = default;
  ShardPlan(std::vector<uint32_t> shard_of, size_t num_shards,
            std::vector<CutEdge> cut_edges, ShardMode mode);

  uint32_t ShardOf(VertexId v) const { return shard_of_[v]; }
  size_t num_shards() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  size_t NumVertices() const { return shard_of_.size(); }
  ShardMode mode() const { return mode_; }

  /// Global vertex ids of shard s, ascending.
  std::span<const VertexId> ShardMembers(uint32_t s) const {
    return {members_.data() + offsets_[s], offsets_[s + 1] - offsets_[s]};
  }

  /// The boundary-edge manifest: every severed edge, sorted by
  /// (source, target). Empty in connectivity-closed mode.
  std::span<const CutEdge> CutEdges() const { return cut_edges_; }

 private:
  std::vector<uint32_t> shard_of_;
  std::vector<uint64_t> offsets_;  // CSR over shards
  std::vector<VertexId> members_;
  std::vector<CutEdge> cut_edges_;
  ShardMode mode_ = ShardMode::kConnectivityClosed;
};

/// Plans a shard cover of `g`. Deterministic: the same graph and options
/// always produce the same plan (component/block discovery order and the
/// greedy packer are pure functions of the input), so independent processes
/// given the same dataset flags agree on the plan without coordination.
StatusOr<ShardPlan> PlanShards(const Graph& g, const ShardPlanOptions& options);

/// One shard's materialized subgraph: the subgraph induced by its member set
/// plus ghost vertices for the off-shard endpoints of its incident cut
/// edges, under an order-preserving remap (local id i is the i-th smallest
/// global id among members ∪ ghosts, so relative vertex order — and with it
/// every deterministic tie-break in the search algorithms — is preserved).
/// Ghosts keep their real labels; each incident cut edge is materialized in
/// its stored direction. A plan with an empty cut yields no ghosts.
struct ShardExtract {
  Graph graph;
  /// Local -> global vertex id, strictly ascending; size = graph vertices.
  std::vector<VertexId> global_of;
  /// Local ids of ghost vertices, strictly ascending. Ghosts are read-only
  /// replicas of other shards' vertices: answers anchored on them are
  /// filtered worker-side (ShardRemapService) and updates never target
  /// them.
  std::vector<VertexId> ghosts;
};

/// Materializes shard `shard` of `plan`: the member-induced subgraph, plus a
/// ghost vertex for every distinct off-shard endpoint of the shard's
/// incident cut edges (both directions), with those cut edges materialized.
/// Labels keep their global ids, so keyword queries need no translation.
StatusOr<ShardExtract> ExtractShard(const Graph& g, const ShardPlan& plan,
                                    uint32_t shard);

}  // namespace bigindex

#endif  // BIGINDEX_SEARCH_PARTITIONER_H_
