#include "search/rclique.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <queue>

namespace bigindex {
namespace {

/// One Lawler search space: a candidate set per keyword position. Pinned
/// positions are singletons.
struct SearchSpace {
  std::vector<std::vector<VertexId>> sets;
};

/// A scored candidate answer (one pick per keyword).
struct Candidate {
  std::vector<VertexId> picks;
  uint32_t weight = 0;
  bool valid = false;
};

/// Deterministic ordering: smaller weight first, then lexicographic picks.
bool CandidateLess(const Candidate& a, const Candidate& b) {
  if (a.weight != b.weight) return a.weight < b.weight;
  return a.picks < b.picks;
}

/// Greedy 2-approximate best answer of a search space (Kargar & An):
/// anchor on the smallest candidate set; for each anchor vertex pick the
/// nearest member of every other set; keep the best fully-valid candidate
/// (all pairwise distances <= r).
class BestAnswerFinder {
 public:
  BestAnswerFinder(const Graph& g, const NeighborIndex& index, uint32_t r,
                   QueryContext& ctx)
      : index_(index),
        r_(r),
        position_mask_(ctx.ZeroedVertexArray(0, g.NumVertices())),
        touched_(ctx.VertexScratch(0)) {}

  Candidate Find(const SearchSpace& space, RCliqueStats* stats) {
    const size_t nq = space.sets.size();
    Candidate best;

    // Anchor position: smallest candidate set.
    size_t anchor = 0;
    for (size_t i = 1; i < nq; ++i) {
      if (space.sets[i].size() < space.sets[anchor].size()) anchor = i;
    }

    // Mark membership of every vertex in every non-anchor position.
    touched_.clear();
    for (size_t i = 0; i < nq; ++i) {
      if (i == anchor) continue;
      for (VertexId v : space.sets[i]) {
        if (position_mask_[v] == 0) touched_.push_back(v);
        position_mask_[v] |= (1u << i);
      }
    }

    std::vector<VertexId>& nearest = nearest_;
    std::vector<uint32_t>& nearest_dist = nearest_dist_;
    for (VertexId u : space.sets[anchor]) {
      nearest.assign(nq, kInvalidVertex);
      nearest_dist.assign(nq, kInfDistance);
      nearest[anchor] = u;
      nearest_dist[anchor] = 0;
      // One scan of u's r-neighborhood covers every other position.
      for (const auto& [v, d] : index_.Neighborhood(u)) {
        uint32_t mask = position_mask_[v];
        while (mask) {
          size_t i = static_cast<size_t>(std::countr_zero(mask));
          mask &= mask - 1;
          if (d < nearest_dist[i] ||
              (d == nearest_dist[i] && v < nearest[i])) {
            nearest_dist[i] = d;
            nearest[i] = v;
          }
        }
      }
      bool covered = true;
      for (size_t i = 0; i < nq; ++i) {
        if (nearest[i] == kInvalidVertex) {
          covered = false;
          break;
        }
      }
      if (!covered) continue;

      if (stats) ++stats->candidates_scored;
      Candidate cand;
      cand.picks = nearest;
      cand.valid = true;
      for (size_t i = 0; i < nq && cand.valid; ++i) {
        for (size_t j = i + 1; j < nq; ++j) {
          uint32_t d = index_.Distance(cand.picks[i], cand.picks[j]);
          if (d == kInfDistance || d > r_) {
            cand.valid = false;
            break;
          }
          cand.weight += d;
        }
      }
      if (cand.valid && (!best.valid || CandidateLess(cand, best))) {
        best = std::move(cand);
      }
    }

    for (VertexId v : touched_) position_mask_[v] = 0;

    // The greedy anchor scan can miss valid assignments: the nearest picks
    // per position may be pairwise-invalid while farther picks are valid.
    // Dropping such a space from the Lawler heap would silently lose every
    // answer inside it (and with it exactness of full enumeration), so when
    // the greedy finds nothing we fall back to an exact branch-and-bound.
    if (!best.valid) best = ExactBest(space, stats);
    return best;
  }

 private:
  /// Exact minimum (by CandidateLess) valid assignment of a search space,
  /// or an invalid candidate when none exists. Smallest-set-first position
  /// order, prefix pairwise pruning, and a weight bound keep the
  /// branch-and-bound cheap; it only runs when the greedy failed.
  Candidate ExactBest(const SearchSpace& space, RCliqueStats* stats) {
    const size_t nq = space.sets.size();
    std::vector<size_t> order(nq);
    for (size_t i = 0; i < nq; ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return space.sets[a].size() < space.sets[b].size();
    });
    Candidate best;
    std::vector<VertexId> picks(nq, kInvalidVertex);
    auto recurse = [&](auto&& self, size_t depth, uint32_t weight) -> void {
      // Remaining picks only add nonnegative distance, so a partial weight
      // strictly above the incumbent cannot win (ties still can, on picks).
      if (best.valid && weight > best.weight) return;
      if (depth == nq) {
        if (stats) ++stats->candidates_scored;
        Candidate c;
        c.picks = picks;
        c.weight = weight;
        c.valid = true;
        if (!best.valid || CandidateLess(c, best)) best = std::move(c);
        return;
      }
      size_t pos = order[depth];
      for (VertexId v : space.sets[pos]) {
        uint32_t add = 0;
        bool ok = true;
        for (size_t j = 0; j < depth; ++j) {
          uint32_t d = index_.Distance(picks[order[j]], v);
          if (d == kInfDistance || d > r_) {
            ok = false;
            break;
          }
          add += d;
        }
        if (!ok) continue;
        picks[pos] = v;
        self(self, depth + 1, weight + add);
      }
    };
    recurse(recurse, 0, 0);
    return best;
  }

  const NeighborIndex& index_;
  uint32_t r_;
  // Per-vertex mask and its touched list, borrowed from the QueryContext
  // (zeroed at acquisition; Find() restores the zeros via touched_).
  std::vector<uint32_t>& position_mask_;
  std::vector<VertexId>& touched_;
  std::vector<VertexId> nearest_;
  std::vector<uint32_t> nearest_dist_;
};

Answer CandidateToAnswer(const Candidate& c) {
  Answer a;
  a.keyword_vertices = c.picks;
  a.vertices = c.picks;
  a.score = c.weight;
  a.root = kInvalidVertex;
  CanonicalizeAnswer(a);
  return a;
}

}  // namespace

StatusOr<NeighborIndex> NeighborIndex::Build(const Graph& g, uint32_t r,
                                             size_t memory_budget_bytes) {
  NeighborIndex index;
  const size_t n = g.NumVertices();
  index.offsets_.assign(n + 1, 0);
  const size_t entry_size = sizeof(std::pair<VertexId, uint32_t>);

  std::vector<uint32_t> dist(n, kInfDistance);
  std::vector<VertexId> queue;
  std::vector<std::pair<VertexId, uint32_t>> local;
  const CsrView out = g.Out(), in = g.In();
  for (VertexId s = 0; s < n; ++s) {
    // Undirected bounded BFS from s (excluding s itself).
    local.clear();
    queue.clear();
    dist[s] = 0;
    queue.push_back(s);
    size_t head = 0;
    while (head < queue.size()) {
      VertexId v = queue[head++];
      uint32_t d = dist[v];
      if (d >= r) break;
      auto visit = [&](VertexId w) {
        if (dist[w] != kInfDistance) return;
        dist[w] = d + 1;
        queue.push_back(w);
        local.emplace_back(w, d + 1);
      };
      const auto oi = out[v];
      for (uint64_t i = oi.begin; i < oi.end; ++i) visit(out.Slot(i));
      const auto ii = in[v];
      for (uint64_t i = ii.begin; i < ii.end; ++i) visit(in.Slot(i));
    }
    for (VertexId v : queue) dist[v] = kInfDistance;  // reset

    std::sort(local.begin(), local.end());
    index.entries_.insert(index.entries_.end(), local.begin(), local.end());
    index.offsets_[s + 1] = index.entries_.size();

    if (index.entries_.size() * entry_size > memory_budget_bytes) {
      return Status::FailedPrecondition(
          "neighbor index exceeds memory budget (the r-clique neighbor list "
          "is O(|V| * m̄); see Sec. 6.2 on IMDB)");
    }
  }
  return index;
}

uint32_t NeighborIndex::Distance(VertexId u, VertexId v) const {
  if (u == v) return 0;
  auto nbh = Neighborhood(u);
  auto it = std::lower_bound(
      nbh.begin(), nbh.end(), v,
      [](const std::pair<VertexId, uint32_t>& e, VertexId x) {
        return e.first < x;
      });
  if (it == nbh.end() || it->first != v) return kInfDistance;
  return it->second;
}

size_t NeighborIndex::EstimateMemoryBytes(const Graph& g, uint32_t r,
                                          size_t samples, Rng& rng) {
  const size_t n = g.NumVertices();
  if (n == 0 || samples == 0) return 0;
  std::vector<uint32_t> dist(n, kInfDistance);
  std::vector<VertexId> queue;
  size_t total = 0;
  const CsrView out = g.Out(), in = g.In();
  for (size_t i = 0; i < samples; ++i) {
    VertexId s = static_cast<VertexId>(rng.Uniform(n));
    queue.clear();
    dist[s] = 0;
    queue.push_back(s);
    size_t head = 0;
    while (head < queue.size()) {
      VertexId v = queue[head++];
      uint32_t d = dist[v];
      if (d >= r) break;
      auto visit = [&](VertexId w) {
        if (dist[w] != kInfDistance) return;
        dist[w] = d + 1;
        queue.push_back(w);
      };
      const auto oi = out[v];
      for (uint64_t i = oi.begin; i < oi.end; ++i) visit(out.Slot(i));
      const auto ii = in[v];
      for (uint64_t i = ii.begin; i < ii.end; ++i) visit(in.Slot(i));
    }
    total += queue.size() - 1;
    for (VertexId v : queue) dist[v] = kInfDistance;
  }
  double avg = static_cast<double>(total) / samples;
  return static_cast<size_t>(avg * n *
                             sizeof(std::pair<VertexId, uint32_t>));
}

std::vector<Answer> RCliqueSearch(const Graph& g, const NeighborIndex& index,
                                  const std::vector<LabelId>& keywords,
                                  const RCliqueOptions& options,
                                  QueryContext& ctx, RCliqueStats* stats) {
  std::vector<Answer> answers;
  const size_t nq = keywords.size();
  if (nq == 0 || nq > 32 || g.NumVertices() == 0) return answers;

  SearchSpace root_space;
  root_space.sets.reserve(nq);
  for (LabelId q : keywords) {
    auto vs = g.VerticesWithLabel(q);
    if (vs.empty()) return answers;
    root_space.sets.emplace_back(vs.begin(), vs.end());
  }

  BestAnswerFinder finder(g, index, options.r, ctx);

  struct QueueEntry {
    Candidate best;
    SearchSpace space;
  };
  auto entry_greater = [](const QueueEntry& a, const QueueEntry& b) {
    return CandidateLess(b.best, a.best);  // min-heap by candidate order
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      decltype(entry_greater)>
      spaces(entry_greater);

  if (stats) ++stats->spaces_explored;
  Candidate first = finder.Find(root_space, stats);
  if (first.valid) spaces.push({std::move(first), std::move(root_space)});

  const size_t want = options.top_k == 0 ? SIZE_MAX : options.top_k;
  while (!spaces.empty() && answers.size() < want) {
    QueueEntry entry =
        std::move(const_cast<QueueEntry&>(spaces.top()));
    spaces.pop();
    answers.push_back(CandidateToAnswer(entry.best));

    // Lawler decomposition: pin positions < i to the emitted picks, exclude
    // the emitted pick at position i, keep tails intact. Subspaces are
    // pairwise disjoint and their union is the parent minus the answer.
    for (size_t i = 0; i < nq; ++i) {
      SearchSpace sub;
      sub.sets.reserve(nq);
      for (size_t j = 0; j < i; ++j) {
        sub.sets.push_back({entry.best.picks[j]});
      }
      std::vector<VertexId> restricted = entry.space.sets[i];
      restricted.erase(std::remove(restricted.begin(), restricted.end(),
                                   entry.best.picks[i]),
                       restricted.end());
      if (restricted.empty()) continue;
      sub.sets.push_back(std::move(restricted));
      for (size_t j = i + 1; j < nq; ++j) {
        sub.sets.push_back(entry.space.sets[j]);
      }
      if (stats) ++stats->spaces_explored;
      Candidate best = finder.Find(sub, stats);
      if (best.valid) spaces.push({std::move(best), std::move(sub)});
    }
  }
  return answers;
}

std::vector<Answer> RCliqueSearch(const Graph& g, const NeighborIndex& index,
                                  const std::vector<LabelId>& keywords,
                                  const RCliqueOptions& options,
                                  RCliqueStats* stats) {
  QueryContext ctx;
  return RCliqueSearch(g, index, keywords, options, ctx, stats);
}

std::vector<Answer> RCliqueEnumerateAll(const Graph& g,
                                        const NeighborIndex& index,
                                        const std::vector<LabelId>& keywords,
                                        uint32_t r) {
  std::vector<Answer> answers;
  const size_t nq = keywords.size();
  if (nq == 0 || g.NumVertices() == 0) return answers;
  std::vector<std::span<const VertexId>> sets;
  for (LabelId q : keywords) {
    sets.push_back(g.VerticesWithLabel(q));
    if (sets.back().empty()) return answers;
  }

  std::vector<VertexId> picks(nq);
  // Depth-first product with prefix pairwise pruning.
  auto recurse = [&](auto&& self, size_t depth, uint32_t weight) -> void {
    if (depth == nq) {
      Candidate c;
      c.picks = picks;
      c.weight = weight;
      c.valid = true;
      answers.push_back(CandidateToAnswer(c));
      return;
    }
    for (VertexId v : sets[depth]) {
      uint32_t add = 0;
      bool ok = true;
      for (size_t j = 0; j < depth; ++j) {
        uint32_t d = index.Distance(picks[j], v);
        if (d == kInfDistance || d > r) {
          ok = false;
          break;
        }
        add += d;
      }
      if (!ok) continue;
      picks[depth] = v;
      self(self, depth + 1, weight + add);
    }
  };
  recurse(recurse, 0, 0);
  SortAnswers(answers);
  return answers;
}

std::vector<Answer> RCliqueAlgorithm::Evaluate(const Graph& g,
                                               const std::vector<LabelId>& keywords,
                                               QueryContext& ctx) const {
  const NeighborIndex* index =
      cache_.GetOrBuild(g, [&]() -> std::unique_ptr<NeighborIndex> {
        auto built =
            NeighborIndex::Build(g, options_.r, options_.memory_budget_bytes);
        if (!built.ok()) return nullptr;
        return std::make_unique<NeighborIndex>(std::move(built).value());
      });
  if (index == nullptr) return {};  // infeasible index: no answers (see docs)
  return RCliqueSearch(g, *index, keywords, options_, ctx);
}

std::optional<Answer> RCliqueAlgorithm::VerifyCandidate(
    const Graph& g, const std::vector<LabelId>& keywords,
    const Answer& candidate, QueryContext& ctx) const {
  const size_t nq = keywords.size();
  if (candidate.keyword_vertices.size() != nq) return std::nullopt;
  for (size_t i = 0; i < nq; ++i) {
    if (g.label(candidate.keyword_vertices[i]) != keywords[i]) {
      return std::nullopt;
    }
  }

  BallCache& cache = ctx.Balls();
  cache.SwitchTo(&g, options_.r);
  if (cache.balls.size() > 2048) cache.balls.clear();
  std::vector<VertexId>& queue = ctx.VertexScratch(0);
  auto ball_of = [&](VertexId u)
      -> const std::unordered_map<VertexId, uint32_t>& {
    auto it = cache.balls.find(u);
    if (it != cache.balls.end()) return it->second;
    // One bounded undirected BFS per distinct keyword vertex; every pairwise
    // check against it becomes a hash lookup.
    std::unordered_map<VertexId, uint32_t> ball;
    queue.clear();
    queue.push_back(u);
    ball.emplace(u, 0);
    size_t head = 0;
    const CsrView out = g.Out(), in = g.In();
    while (head < queue.size()) {
      VertexId x = queue[head++];
      uint32_t d = ball[x];
      if (d >= options_.r) break;
      auto visit = [&](VertexId w) {
        if (ball.emplace(w, d + 1).second) queue.push_back(w);
      };
      const auto oi = out[x];
      for (uint64_t i = oi.begin; i < oi.end; ++i) visit(out.Slot(i));
      const auto ii = in[x];
      for (uint64_t i = ii.begin; i < ii.end; ++i) visit(in.Slot(i));
    }
    return cache.balls.emplace(u, std::move(ball)).first->second;
  };

  Answer a;
  a.keyword_vertices = candidate.keyword_vertices;
  a.vertices = candidate.keyword_vertices;
  a.root = kInvalidVertex;
  for (size_t i = 0; i < nq; ++i) {
    const auto& ball = ball_of(a.keyword_vertices[i]);
    for (size_t j = i + 1; j < nq; ++j) {
      auto it = ball.find(a.keyword_vertices[j]);
      if (it == ball.end() || it->second > options_.r) return std::nullopt;
      a.score += it->second;
    }
  }
  CanonicalizeAnswer(a);
  return a;
}

void RCliqueAlgorithm::ClearCache() const {
  cache_.Clear();
}

}  // namespace bigindex
