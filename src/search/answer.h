// Shared answer representation for all keyword search semantics.
//
// Every semantics in src/search returns Answers: a vertex set with one
// designated match vertex per query keyword, an optional root (tree
// semantics), and a score where *lower is better* (Σ distances in both Blinks
// and r-clique). The answer's topology is implied: it is the node-induced
// subgraph of `vertices` in the graph it was computed on, which is exactly
// what BiG-index's specialization machinery consumes (Sec. 4.2).

#ifndef BIGINDEX_SEARCH_ANSWER_H_
#define BIGINDEX_SEARCH_ANSWER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace bigindex {

/// One query answer over a specific graph (a data graph or a summary layer).
struct Answer {
  /// All vertices of the answer, sorted ascending, unique. Includes the root
  /// and all intermediate (Steiner) vertices of connecting paths.
  std::vector<VertexId> vertices;

  /// keyword_vertices[i] matches the i-th query keyword. A vertex may match
  /// several keywords. Always the same length as the query.
  std::vector<VertexId> keyword_vertices;

  /// Root for rooted-tree semantics (bkws / Blinks); kInvalidVertex for
  /// semantics without a root (r-clique).
  VertexId root = kInvalidVertex;

  /// Lower is better. Σ dist(root, kwᵢ) for tree semantics,
  /// Σ pairwise distances for r-clique.
  uint32_t score = 0;

  bool operator==(const Answer&) const = default;
};

/// Orders answers by (score, root, keyword vertices) for deterministic top-k.
bool AnswerLess(const Answer& a, const Answer& b);

/// Sorts answers into deterministic rank order (stable across runs).
void SortAnswers(std::vector<Answer>& answers);

/// Canonicalizes `vertices` (sort + unique). Call after assembling an answer.
void CanonicalizeAnswer(Answer& a);

/// Debug rendering: "root=3 score=5 kw=[7,9] V={3,5,7,9}".
std::string AnswerToString(const Answer& a);

/// True iff the answer's vertex set is connected in the *undirected* view of
/// g. All semantics here produce connected answers; tests verify it.
bool AnswerIsConnected(const Graph& g, const Answer& a);

}  // namespace bigindex

#endif  // BIGINDEX_SEARCH_ANSWER_H_
