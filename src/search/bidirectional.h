// Bidirectional expansion keyword search (Kacholia et al., VLDB'05) — one of
// the algorithms the paper lists as plug-compatible with BiG-index
// ("our framework can be also applied to optimize the algorithms that
// contain these operations with minor modifications, e.g., [12], [15], [1],
// [14], [32]", Sec. 5). This realizes [14].
//
// Semantics: identical to bkws (distinct-root trees, dist(root, kw_i) <=
// d_max, score = Σ distances) — the differential tests assert answer-set
// equality with BackwardKeywordSearch. The *strategy* differs: instead of
// running each keyword cone to exhaustion, frontiers expand best-first by
// activation (spreading activation: keyword origins start with activation
// 1/|V_q|, decaying by `decay` per hop), and a forward-expansion phase grows
// from already-discovered candidate roots toward undiscovered keywords,
// which prunes work when hub vertices would otherwise explode the backward
// frontier. Exhaustive by default (top_k = 0) so results stay exact.

#ifndef BIGINDEX_SEARCH_BIDIRECTIONAL_H_
#define BIGINDEX_SEARCH_BIDIRECTIONAL_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/search_algorithm.h"
#include "engine/query_context.h"
#include "graph/graph.h"
#include "search/answer.h"

namespace bigindex {

/// Options for bidirectional search.
struct BidirectionalOptions {
  /// Maximum root-to-keyword distance.
  uint32_t d_max = 5;

  /// Return only the k best answers; 0 = all.
  size_t top_k = 0;

  /// Activation decay per hop (in (0, 1]); lower values prioritize
  /// expanding near the keywords. Affects work order, never results.
  double decay = 0.5;

  /// Include path vertices in answers.
  bool materialize_paths = true;
};

/// Search statistics for comparing strategies against plain bkws.
struct BidirectionalStats {
  size_t backward_pops = 0;
  size_t forward_pops = 0;
};

/// Stand-alone entry point; per-cone distance tables come from `ctx`.
std::vector<Answer> BidirectionalSearch(const Graph& g,
                                        const std::vector<LabelId>& keywords,
                                        const BidirectionalOptions& options,
                                        QueryContext& ctx,
                                        BidirectionalStats* stats = nullptr);

/// Convenience overload running on a throwaway context.
std::vector<Answer> BidirectionalSearch(const Graph& g,
                                        const std::vector<LabelId>& keywords,
                                        const BidirectionalOptions& options = {},
                                        BidirectionalStats* stats = nullptr);

/// Adapter implementing the pluggable `f` interface.
class BidirectionalAlgorithm final : public KeywordSearchAlgorithm {
 public:
  explicit BidirectionalAlgorithm(BidirectionalOptions options = {})
      : options_(options) {}

  using KeywordSearchAlgorithm::Evaluate;
  using KeywordSearchAlgorithm::VerifyCandidate;

  std::string_view Name() const override { return "bidirectional"; }

  std::vector<Answer> Evaluate(const Graph& g,
                               const std::vector<LabelId>& keywords,
                               QueryContext& ctx) const override {
    return BidirectionalSearch(g, keywords, options_, ctx);
  }

  bool IsRooted() const override { return true; }

  // Every answer vertex lies on a root->keyword path of length <= d_max.
  uint32_t LocalityRadius() const override { return options_.d_max; }

  std::optional<Answer> VerifyCandidate(const Graph& g,
                                        const std::vector<LabelId>& keywords,
                                        const Answer& candidate,
                                        QueryContext& ctx) const override;

  const BidirectionalOptions& options() const { return options_; }

 private:
  BidirectionalOptions options_;
};

}  // namespace bigindex

#endif  // BIGINDEX_SEARCH_BIDIRECTIONAL_H_
