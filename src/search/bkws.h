// Backward keyword search (bkws) — the BANKS-style semantics of Sec. 5.1 and
// the exact keyword search of Sec. 2.
//
// A match of Q = {q_1..q_n} is a subtree T rooted at r with one leaf p_i per
// keyword such that L(p_i) = q_i and dist(r, p_i) <= d_max. We implement the
// distinct-root variant (at most one — the best — tree per root), which is
// the semantics He et al. refine and the one the paper plugs into BiG-index.
//
// Evaluation is the classical backward expansion: one bounded multi-source
// BFS per keyword along *reversed* edges from the keyword's vertex set V_qi,
// recording for every reached vertex its distance and a witness keyword
// vertex + next hop (so answer trees can be materialized). Roots are vertices
// reached by all keywords. All per-vertex working arrays live in the
// QueryContext, so repeated queries through one context allocate nothing.

#ifndef BIGINDEX_SEARCH_BKWS_H_
#define BIGINDEX_SEARCH_BKWS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/search_algorithm.h"
#include "engine/query_context.h"
#include "graph/graph.h"
#include "search/answer.h"

namespace bigindex {

/// Options for backward keyword search.
struct BkwsOptions {
  /// Maximum root-to-keyword distance (the paper uses d_max = 5 for Blinks
  /// experiments; bkws shares the bound).
  uint32_t d_max = 5;

  /// Return only the k best-scoring answers; 0 = return all matches.
  size_t top_k = 0;

  /// If true, answer trees include the intermediate path vertices
  /// (root -> keyword witnesses); if false, only root + keyword vertices.
  /// Path vertices are required for BiG-index answer generation.
  bool materialize_paths = true;
};

/// Stand-alone entry point; scratch comes from `ctx` (cone slots [0, |Q|)).
std::vector<Answer> BackwardKeywordSearch(const Graph& g,
                                          const std::vector<LabelId>& keywords,
                                          const BkwsOptions& options,
                                          QueryContext& ctx);

/// Convenience overload running on a throwaway context.
std::vector<Answer> BackwardKeywordSearch(const Graph& g,
                                          const std::vector<LabelId>& keywords,
                                          const BkwsOptions& options = {});

/// Computes the exact best answer tree rooted at `root` (shared by bkws and
/// Blinks verification): one forward bounded BFS from the root, nearest
/// keyword vertex per keyword with deterministic tie-breaking (smallest id).
/// Returns nullopt if some keyword is unreachable within d_max. Uses ctx
/// BFS slot 0.
std::optional<Answer> CompleteRootedAnswer(
    const Graph& g, const std::vector<LabelId>& keywords, VertexId root,
    uint32_t d_max, bool materialize_paths, QueryContext& ctx);

/// Convenience overload running on a throwaway context.
std::optional<Answer> CompleteRootedAnswer(
    const Graph& g, const std::vector<LabelId>& keywords, VertexId root,
    uint32_t d_max, bool materialize_paths);

/// Adapter implementing the pluggable `f` interface.
class BkwsAlgorithm final : public KeywordSearchAlgorithm {
 public:
  explicit BkwsAlgorithm(BkwsOptions options = {}) : options_(options) {}

  using KeywordSearchAlgorithm::Evaluate;
  using KeywordSearchAlgorithm::VerifyCandidate;

  std::string_view Name() const override { return "bkws"; }

  std::vector<Answer> Evaluate(const Graph& g,
                               const std::vector<LabelId>& keywords,
                               QueryContext& ctx) const override {
    return BackwardKeywordSearch(g, keywords, options_, ctx);
  }

  bool IsRooted() const override { return true; }

  // Every answer vertex lies on a root->keyword path of length <= d_max.
  uint32_t LocalityRadius() const override { return options_.d_max; }

  std::optional<Answer> VerifyCandidate(const Graph& g,
                                        const std::vector<LabelId>& keywords,
                                        const Answer& candidate,
                                        QueryContext& ctx) const override {
    return CompleteRootedAnswer(g, keywords, candidate.root, options_.d_max,
                                options_.materialize_paths, ctx);
  }

  const BkwsOptions& options() const { return options_; }

 private:
  BkwsOptions options_;
};

}  // namespace bigindex

#endif  // BIGINDEX_SEARCH_BKWS_H_
