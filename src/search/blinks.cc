#include "search/blinks.h"

#include <algorithm>
#include <cassert>

#include "search/bkws.h"

namespace bigindex {
namespace {

/// A lazily expanded backward BFS cone for one keyword: level L is expanded
/// on demand; after ExpandLevel() returns, every vertex at distance <=
/// frontier_dist() from the keyword set is discovered with its exact
/// distance, witness keyword vertex, and next hop. Per-vertex arrays are
/// borrowed from a context ConeScratch (clean on entry, released by the
/// search when done).
class LazyCone {
 public:
  LazyCone(const Graph& g, LabelId keyword, uint32_t d_max, ConeScratch& s)
      : in_(g.In()), d_max_(d_max), s_(s) {
    for (VertexId v : g.VerticesWithLabel(keyword)) {
      s_.dist[v] = 0;
      s_.witness[v] = v;
      s_.parent[v] = v;
      s_.queue.push_back(v);
    }
    level_end_ = s_.queue.size();
  }

  uint32_t frontier_dist() const { return frontier_dist_; }
  bool Exhausted() const {
    return frontier_dist_ >= d_max_ || head_ >= s_.queue.size();
  }

  /// Expands one BFS level. Returns the vertices newly discovered.
  std::span<const VertexId> ExpandLevel(size_t* popped) {
    size_t new_begin = s_.queue.size();
    while (head_ < level_end_) {
      VertexId v = s_.queue[head_++];
      if (popped) ++(*popped);
      const auto [begin, end] = in_[v];
      for (uint64_t i = begin; i < end; ++i) {
        VertexId u = in_.Slot(i);
        if (s_.dist[u] != kInfDistance) continue;
        s_.dist[u] = frontier_dist_ + 1;
        s_.witness[u] = s_.witness[v];
        s_.parent[u] = v;
        s_.queue.push_back(u);
      }
    }
    ++frontier_dist_;
    level_end_ = s_.queue.size();
    return {s_.queue.data() + new_begin, s_.queue.size() - new_begin};
  }

  uint32_t dist(VertexId v) const { return s_.dist[v]; }
  VertexId witness(VertexId v) const { return s_.witness[v]; }

  /// Appends the path from root toward its witness (excludes root).
  void AppendPath(VertexId root, std::vector<VertexId>& out) const {
    VertexId v = root;
    while (v != s_.witness[v]) {
      v = s_.parent[v];
      out.push_back(v);
    }
  }

  void Release() { s_.Release(); }

 private:
  const CsrView in_;
  uint32_t d_max_;
  ConeScratch& s_;
  size_t head_ = 0;
  size_t level_end_ = 0;
  uint32_t frontier_dist_ = 0;
};

}  // namespace

BlinksIndex BlinksIndex::Build(const Graph& g, size_t block_size) {
  BlinksIndex index;
  index.partition_ = PartitionGraph(g, block_size);
  index.portals_ = ComputePortals(g, index.partition_);
  const size_t num_blocks = index.partition_.NumBlocks();
  index.node_keyword_.resize(num_blocks);

  // Per block: multi-source backward BFS from each in-block label set,
  // restricted to block members — the in-block node-keyword map.
  std::vector<VertexId> queue;
  std::vector<uint32_t> dist;
  for (uint32_t b = 0; b < num_blocks; ++b) {
    auto members = index.partition_.BlockMembers(b);
    // Distinct labels in this block.
    std::vector<LabelId> labels;
    for (VertexId v : members) labels.push_back(g.label(v));
    std::sort(labels.begin(), labels.end());
    labels.erase(std::unique(labels.begin(), labels.end()), labels.end());

    for (LabelId l : labels) {
      index.keyword_blocks_[l].push_back(b);
      auto& map = index.node_keyword_[b][l];
      queue.clear();
      for (VertexId v : members) {
        if (g.label(v) == l) {
          map[v] = 0;
          queue.push_back(v);
        }
      }
      size_t head = 0;
      const CsrView in = g.In();
      while (head < queue.size()) {
        VertexId v = queue[head++];
        uint32_t d = map[v];
        const auto [begin, end] = in[v];
        for (uint64_t i = begin; i < end; ++i) {
          VertexId u = in.Slot(i);
          if (index.partition_.BlockOf(u) != b) continue;  // stay in block
          if (map.count(u)) continue;
          map[u] = d + 1;
          queue.push_back(u);
        }
      }
    }
  }

  // Approximate footprint: each node-keyword entry is a (vertex, dist) pair
  // in a hash map (~16 bytes payload + overhead estimate).
  size_t entries = 0;
  for (const auto& block_map : index.node_keyword_) {
    for (const auto& [l, m] : block_map) entries += m.size();
  }
  index.memory_bytes_ = entries * 24 +
                        index.portals_.size() * sizeof(VertexId) +
                        g.NumVertices() * sizeof(uint32_t);
  return index;
}

uint32_t BlinksIndex::InBlockKeywordDistance(VertexId v, LabelId label) const {
  uint32_t b = partition_.BlockOf(v);
  auto it = node_keyword_[b].find(label);
  if (it == node_keyword_[b].end()) return kInfDistance;
  auto vit = it->second.find(v);
  return vit == it->second.end() ? kInfDistance : vit->second;
}

std::span<const uint32_t> BlinksIndex::BlocksWithKeyword(LabelId label) const {
  auto it = keyword_blocks_.find(label);
  if (it == keyword_blocks_.end()) return {};
  return it->second;
}

size_t BlinksIndex::SingleLevelMemoryEstimate(const Graph& g) {
  // Global node-keyword map: one distance entry per (vertex, distinct label).
  return g.NumVertices() * g.DistinctLabels().size() * sizeof(uint32_t);
}

std::vector<Answer> BlinksSearch(const Graph& g, const BlinksIndex& index,
                                 const std::vector<LabelId>& keywords,
                                 const BlinksOptions& options,
                                 QueryContext& ctx, BlinksStats* stats) {
  std::vector<Answer> answers;
  const size_t nq = keywords.size();
  if (nq == 0 || g.NumVertices() == 0) return answers;
  assert(nq <= 32 && "keyword mask is 32 bits");

  std::vector<LazyCone> cones;
  cones.reserve(nq);
  for (size_t i = 0; i < nq; ++i) {
    cones.emplace_back(g, keywords[i], options.d_max,
                       ctx.Cone(i, g.NumVertices()));
  }

  // Per-vertex bookkeeping for partial roots.
  std::vector<uint32_t>& known_mask = ctx.ZeroedVertexArray(0, g.NumVertices());
  std::vector<uint32_t>& sum_known = ctx.ZeroedVertexArray(1, g.NumVertices());
  const uint32_t full_mask =
      nq == 32 ? 0xFFFFFFFFu : ((1u << nq) - 1);
  std::vector<VertexId>& partial = ctx.VertexScratch(0);   // >=1 cone, not complete
  std::vector<VertexId>& complete = ctx.VertexScratch(1);  // all cones (answer roots)

  BlinksStats local_stats;
  BlinksStats& st = stats ? *stats : local_stats;

  auto record_discovery = [&](size_t cone_idx, VertexId v) {
    bool was_virgin = known_mask[v] == 0;
    known_mask[v] |= (1u << cone_idx);
    sum_known[v] += cones[cone_idx].dist(v);
    if (known_mask[v] == full_mask) {
      complete.push_back(v);
    } else if (was_virgin) {
      partial.push_back(v);
      // Node-keyword map probe (bi-level index use): an in-block hit tells
      // us immediately that v is a promising root; the probe count feeds the
      // diagnostics/breakdown figures. Distances stay exact via the cones.
      for (size_t j = 0; j < nq; ++j) {
        if (j == cone_idx) continue;
        ++st.probes;
        index.InBlockKeywordDistance(v, keywords[j]);
      }
    }
  };

  // Seed: level-0 vertices are already in the cones; register them.
  for (size_t i = 0; i < nq; ++i) {
    for (VertexId v : g.VerticesWithLabel(keywords[i])) {
      record_discovery(i, v);
    }
  }

  // Round-robin expansion, smallest frontier first (He et al.'s strategy of
  // advancing the least-advanced cursor keeps the lower bound tight).
  const bool want_topk = options.top_k != 0;
  while (true) {
    // Early termination: the k best complete roots beat every possible
    // future or incomplete root.
    if (want_topk && complete.size() >= options.top_k) {
      // kth best score among complete roots.
      std::vector<uint32_t>& scores = ctx.VertexScratch(2);
      scores.reserve(complete.size());
      for (VertexId v : complete) scores.push_back(sum_known[v]);
      std::nth_element(scores.begin(), scores.begin() + options.top_k - 1,
                       scores.end());
      uint32_t kth = scores[options.top_k - 1];

      // Lower bound over roots never discovered by cone i: dist_i >= f_i+1.
      uint64_t lb_virgin = 0;
      for (const LazyCone& cone : cones) {
        lb_virgin += cone.frontier_dist() + 1;
      }
      // Lower bound over partially discovered roots.
      uint64_t lb_partial = UINT64_MAX;
      for (VertexId v : partial) {
        if (known_mask[v] == full_mask) continue;  // completed meanwhile
        uint64_t lb = sum_known[v];
        for (size_t j = 0; j < nq; ++j) {
          if (!(known_mask[v] >> j & 1)) lb += cones[j].frontier_dist() + 1;
        }
        lb_partial = std::min(lb_partial, lb);
      }
      // Strict: at lb == kth a future root could tie the kth score and win
      // the deterministic tie-break, so only stop when strictly better.
      if (kth < std::min(lb_virgin, lb_partial)) {
        st.early_terminated = true;
        break;
      }
    }

    // Pick the non-exhausted cone with the smallest frontier distance.
    size_t pick = nq;
    for (size_t i = 0; i < nq; ++i) {
      if (cones[i].Exhausted()) continue;
      if (pick == nq ||
          cones[i].frontier_dist() < cones[pick].frontier_dist()) {
        pick = i;
      }
    }
    if (pick == nq) break;  // all exhausted: results are exact and complete

    auto fresh = cones[pick].ExpandLevel(&st.vertices_popped);
    ++st.levels_expanded;
    for (VertexId v : fresh) record_discovery(pick, v);
  }

  // Materialize answers from complete roots.
  answers.reserve(complete.size());
  for (VertexId r : complete) {
    Answer a;
    a.root = r;
    a.score = sum_known[r];
    a.vertices.push_back(r);
    for (const LazyCone& cone : cones) {
      a.keyword_vertices.push_back(cone.witness(r));
      if (options.materialize_paths) {
        cone.AppendPath(r, a.vertices);
      } else {
        a.vertices.push_back(cone.witness(r));
      }
    }
    CanonicalizeAnswer(a);
    answers.push_back(std::move(a));
  }
  for (LazyCone& cone : cones) cone.Release();

  SortAnswers(answers);
  if (want_topk && answers.size() > options.top_k) {
    answers.resize(options.top_k);
  }
  return answers;
}

std::vector<Answer> BlinksSearch(const Graph& g, const BlinksIndex& index,
                                 const std::vector<LabelId>& keywords,
                                 const BlinksOptions& options,
                                 BlinksStats* stats) {
  QueryContext ctx;
  return BlinksSearch(g, index, keywords, options, ctx, stats);
}

std::vector<Answer> BlinksAlgorithm::Evaluate(
    const Graph& g, const std::vector<LabelId>& keywords,
    QueryContext& ctx) const {
  const BlinksIndex* index = cache_.GetOrBuild(g, [&] {
    return std::make_unique<BlinksIndex>(
        BlinksIndex::Build(g, options_.block_size));
  });
  return BlinksSearch(g, *index, keywords, options_, ctx);
}

std::optional<Answer> BlinksAlgorithm::VerifyCandidate(
    const Graph& g, const std::vector<LabelId>& keywords,
    const Answer& candidate, QueryContext& ctx) const {
  return CompleteRootedAnswer(g, keywords, candidate.root, options_.d_max,
                              options_.materialize_paths, ctx);
}

void BlinksAlgorithm::ClearCache() const {
  cache_.Clear();
}

}  // namespace bigindex
