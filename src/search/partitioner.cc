#include "search/partitioner.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace bigindex {

Partition::Partition(std::vector<uint32_t> block_of, size_t num_blocks)
    : block_of_(std::move(block_of)) {
  offsets_.assign(num_blocks + 1, 0);
  members_.resize(block_of_.size());
  for (uint32_t b : block_of_) offsets_[b + 1]++;
  std::partial_sum(offsets_.begin(), offsets_.end(), offsets_.begin());
  std::vector<uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (VertexId v = 0; v < block_of_.size(); ++v) {
    members_[cursor[block_of_[v]]++] = v;
  }
}

Partition PartitionGraph(const Graph& g, size_t target_block_size) {
  assert(target_block_size > 0);
  const size_t n = g.NumVertices();
  std::vector<uint32_t> block_of(n, UINT32_MAX);
  uint32_t next_block = 0;
  std::vector<VertexId> queue;
  for (VertexId seed = 0; seed < n; ++seed) {
    if (block_of[seed] != UINT32_MAX) continue;
    uint32_t b = next_block++;
    size_t filled = 0;
    queue.clear();
    queue.push_back(seed);
    block_of[seed] = b;
    ++filled;
    size_t head = 0;
    while (head < queue.size() && filled < target_block_size) {
      VertexId u = queue[head++];
      auto try_assign = [&](VertexId w) {
        if (filled >= target_block_size) return;
        if (block_of[w] != UINT32_MAX) return;
        block_of[w] = b;
        ++filled;
        queue.push_back(w);
      };
      const auto oi = g.Out()[u];
      for (uint64_t i = oi.begin; i < oi.end; ++i) try_assign(g.Out().Slot(i));
      const auto ii = g.In()[u];
      for (uint64_t i = ii.begin; i < ii.end; ++i) try_assign(g.In().Slot(i));
    }
  }
  return Partition(std::move(block_of), next_block);
}

std::vector<VertexId> ComputePortals(const Graph& g,
                                     const Partition& partition) {
  std::vector<VertexId> portals;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    uint32_t b = partition.BlockOf(v);
    bool crossing = false;
    for (VertexId w : g.OutNeighbors(v)) {
      if (partition.BlockOf(w) != b) {
        crossing = true;
        break;
      }
    }
    if (!crossing) {
      for (VertexId w : g.InNeighbors(v)) {
        if (partition.BlockOf(w) != b) {
          crossing = true;
          break;
        }
      }
    }
    if (crossing) portals.push_back(v);
  }
  return portals;
}

}  // namespace bigindex
