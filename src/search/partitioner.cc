#include "search/partitioner.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace bigindex {

Partition::Partition(std::vector<uint32_t> block_of, size_t num_blocks)
    : block_of_(std::move(block_of)) {
  offsets_.assign(num_blocks + 1, 0);
  members_.resize(block_of_.size());
  for (uint32_t b : block_of_) offsets_[b + 1]++;
  std::partial_sum(offsets_.begin(), offsets_.end(), offsets_.begin());
  std::vector<uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (VertexId v = 0; v < block_of_.size(); ++v) {
    members_[cursor[block_of_[v]]++] = v;
  }
}

Partition PartitionGraph(const Graph& g, size_t target_block_size) {
  assert(target_block_size > 0);
  const size_t n = g.NumVertices();
  std::vector<uint32_t> block_of(n, UINT32_MAX);
  uint32_t next_block = 0;
  std::vector<VertexId> queue;
  for (VertexId seed = 0; seed < n; ++seed) {
    if (block_of[seed] != UINT32_MAX) continue;
    uint32_t b = next_block++;
    size_t filled = 0;
    queue.clear();
    queue.push_back(seed);
    block_of[seed] = b;
    ++filled;
    size_t head = 0;
    while (head < queue.size() && filled < target_block_size) {
      VertexId u = queue[head++];
      auto try_assign = [&](VertexId w) {
        if (filled >= target_block_size) return;
        if (block_of[w] != UINT32_MAX) return;
        block_of[w] = b;
        ++filled;
        queue.push_back(w);
      };
      const auto oi = g.Out()[u];
      for (uint64_t i = oi.begin; i < oi.end; ++i) try_assign(g.Out().Slot(i));
      const auto ii = g.In()[u];
      for (uint64_t i = ii.begin; i < ii.end; ++i) try_assign(g.In().Slot(i));
    }
  }
  return Partition(std::move(block_of), next_block);
}

namespace {

/// Weakly-connected components in discovery order (seeded by ascending
/// vertex id): comp_of[v] plus the component count. Deterministic.
size_t WeakComponents(const Graph& g, std::vector<uint32_t>& comp_of) {
  const size_t n = g.NumVertices();
  comp_of.assign(n, UINT32_MAX);
  uint32_t next = 0;
  std::vector<VertexId> queue;
  const CsrView out = g.Out();
  const CsrView in = g.In();
  for (VertexId seed = 0; seed < n; ++seed) {
    if (comp_of[seed] != UINT32_MAX) continue;
    uint32_t c = next++;
    queue.clear();
    queue.push_back(seed);
    comp_of[seed] = c;
    size_t head = 0;
    while (head < queue.size()) {
      VertexId u = queue[head++];
      auto visit = [&](VertexId w) {
        if (comp_of[w] != UINT32_MAX) return;
        comp_of[w] = c;
        queue.push_back(w);
      };
      const auto oi = out[u];
      for (uint64_t i = oi.begin; i < oi.end; ++i) visit(out.Slot(i));
      const auto ii = in[u];
      for (uint64_t i = ii.begin; i < ii.end; ++i) visit(in.Slot(i));
    }
  }
  return next;
}

/// Longest-processing-time greedy: units (by id) with their sizes are packed
/// largest-first onto the least-loaded shard (ties: lowest shard id; equal
/// sizes: lowest unit id first). Deterministic; max load <= avg + max unit.
std::vector<uint32_t> PackUnits(const std::vector<uint64_t>& unit_size,
                                size_t num_shards) {
  std::vector<uint32_t> order(unit_size.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return unit_size[a] > unit_size[b];
  });
  std::vector<uint64_t> load(num_shards, 0);
  std::vector<uint32_t> shard_of_unit(unit_size.size(), 0);
  for (uint32_t u : order) {
    uint32_t best = 0;
    for (uint32_t s = 1; s < num_shards; ++s) {
      if (load[s] < load[best]) best = s;
    }
    shard_of_unit[u] = best;
    load[best] += unit_size[u];
  }
  return shard_of_unit;
}

}  // namespace

ShardPlan::ShardPlan(std::vector<uint32_t> shard_of, size_t num_shards,
                     std::vector<CutEdge> cut_edges, ShardMode mode)
    : shard_of_(std::move(shard_of)),
      cut_edges_(std::move(cut_edges)),
      mode_(mode) {
  offsets_.assign(num_shards + 1, 0);
  members_.resize(shard_of_.size());
  for (uint32_t s : shard_of_) offsets_[s + 1]++;
  std::partial_sum(offsets_.begin(), offsets_.end(), offsets_.begin());
  std::vector<uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (VertexId v = 0; v < shard_of_.size(); ++v) {
    members_[cursor[shard_of_[v]]++] = v;
  }
}

StatusOr<ShardPlan> PlanShards(const Graph& g,
                               const ShardPlanOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  const size_t n = g.NumVertices();

  // Unit assignment: a unit is a weakly-connected component
  // (connectivity-closed) or a BFS block (general cut).
  std::vector<uint32_t> unit_of;
  size_t num_units;
  if (options.mode == ShardMode::kConnectivityClosed) {
    num_units = WeakComponents(g, unit_of);
  } else {
    if (options.bfs_block_size == 0) {
      return Status::InvalidArgument("bfs_block_size must be >= 1");
    }
    Partition blocks = PartitionGraph(g, options.bfs_block_size);
    num_units = blocks.NumBlocks();
    unit_of.resize(n);
    for (VertexId v = 0; v < n; ++v) unit_of[v] = blocks.BlockOf(v);
  }

  std::vector<uint64_t> unit_size(num_units, 0);
  for (uint32_t u : unit_of) unit_size[u]++;
  std::vector<uint32_t> shard_of_unit =
      PackUnits(unit_size, options.num_shards);

  std::vector<uint32_t> shard_of(n);
  for (VertexId v = 0; v < n; ++v) shard_of[v] = shard_of_unit[unit_of[v]];

  // Boundary-edge manifest: sorted by (source, target) for free — vertices
  // ascend and CSR out-neighbors are sorted.
  std::vector<CutEdge> cut;
  const CsrView out = g.Out();
  for (VertexId v = 0; v < n; ++v) {
    const auto oi = out[v];
    for (uint64_t i = oi.begin; i < oi.end; ++i) {
      VertexId w = out.Slot(i);
      if (shard_of[v] != shard_of[w]) cut.push_back({v, w});
    }
  }
  assert(options.mode != ShardMode::kConnectivityClosed || cut.empty());
  return ShardPlan(std::move(shard_of), options.num_shards, std::move(cut),
                   options.mode);
}

StatusOr<ShardExtract> ExtractShard(const Graph& g, const ShardPlan& plan,
                                    uint32_t shard) {
  if (plan.NumVertices() != g.NumVertices()) {
    return Status::InvalidArgument("plan does not cover this graph");
  }
  if (shard >= plan.num_shards()) {
    return Status::OutOfRange("shard " + std::to_string(shard) +
                              " out of range (plan has " +
                              std::to_string(plan.num_shards()) + ")");
  }
  std::span<const VertexId> members = plan.ShardMembers(shard);
  ShardExtract extract;

  // Ghost set: every distinct off-shard endpoint of a cut edge incident to
  // this shard, in either direction. The manifest is sorted by
  // (source, target), so the collected ids only need a final sort + dedup.
  std::vector<VertexId> ghost_globals;
  for (const CutEdge& e : plan.CutEdges()) {
    bool src_here = plan.ShardOf(e.source) == shard;
    bool dst_here = plan.ShardOf(e.target) == shard;
    if (src_here) ghost_globals.push_back(e.target);
    if (dst_here) ghost_globals.push_back(e.source);
  }
  std::sort(ghost_globals.begin(), ghost_globals.end());
  ghost_globals.erase(
      std::unique(ghost_globals.begin(), ghost_globals.end()),
      ghost_globals.end());

  // global_of = sorted merge of members and ghosts (disjoint by
  // construction: a ghost lives on another shard), so the remap stays
  // order-preserving with ghosts interleaved.
  extract.global_of.resize(members.size() + ghost_globals.size());
  std::merge(members.begin(), members.end(), ghost_globals.begin(),
             ghost_globals.end(), extract.global_of.begin());

  std::vector<VertexId> local_of(g.NumVertices(), kInvalidVertex);
  for (size_t i = 0; i < extract.global_of.size(); ++i) {
    local_of[extract.global_of[i]] = static_cast<VertexId>(i);
  }
  extract.ghosts.reserve(ghost_globals.size());
  for (VertexId gv : ghost_globals) extract.ghosts.push_back(local_of[gv]);
  std::sort(extract.ghosts.begin(), extract.ghosts.end());

  GraphBuilder b;
  size_t edge_estimate = ghost_globals.size();
  for (VertexId v : members) edge_estimate += g.OutDegree(v);
  b.Reserve(extract.global_of.size(), edge_estimate);
  for (VertexId v : extract.global_of) b.AddVertex(g.label(v));
  const CsrView out = g.Out();
  for (VertexId v : members) {
    const auto oi = out[v];
    for (uint64_t i = oi.begin; i < oi.end; ++i) {
      VertexId w = out.Slot(i);
      // Intra-shard edge or an outgoing cut edge to a ghost; edges to
      // vertices of other shards that are not ghosts here cannot occur
      // (any member->off-shard edge is in the manifest, so its target is
      // a ghost).
      if (local_of[w] == kInvalidVertex) continue;
      b.AddEdge(local_of[v], local_of[w]);
    }
  }
  // Incoming cut edges (ghost source -> member target) are not reachable
  // from member out-adjacency; materialize them from the manifest.
  for (const CutEdge& e : plan.CutEdges()) {
    if (plan.ShardOf(e.target) == shard) {
      b.AddEdge(local_of[e.source], local_of[e.target]);
    }
  }
  auto graph = b.Build();
  if (!graph.ok()) return graph.status();
  extract.graph = std::move(graph).value();
  return extract;
}

std::vector<VertexId> ComputePortals(const Graph& g,
                                     const Partition& partition) {
  std::vector<VertexId> portals;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    uint32_t b = partition.BlockOf(v);
    bool crossing = false;
    for (VertexId w : g.OutNeighbors(v)) {
      if (partition.BlockOf(w) != b) {
        crossing = true;
        break;
      }
    }
    if (!crossing) {
      for (VertexId w : g.InNeighbors(v)) {
        if (partition.BlockOf(w) != b) {
          crossing = true;
          break;
        }
      }
    }
    if (crossing) portals.push_back(v);
  }
  return portals;
}

}  // namespace bigindex
