#include "bisim/maintenance.h"

#include <algorithm>
#include <set>

namespace bigindex {

StatusOr<Graph> ApplyUpdates(const Graph& g,
                             std::span<const GraphUpdate> updates) {
  const size_t n = g.NumVertices();
  std::set<std::pair<VertexId, VertexId>> edges;
  for (const auto& [u, v] : g.Edges()) edges.emplace(u, v);
  for (const GraphUpdate& up : updates) {
    if (up.source >= n || up.target >= n) {
      return Status::InvalidArgument("update references out-of-range vertex");
    }
    if (up.kind == GraphUpdate::Kind::kAddEdge) {
      edges.emplace(up.source, up.target);
    } else {
      edges.erase({up.source, up.target});
    }
  }
  GraphBuilder builder;
  builder.Reserve(n, edges.size());
  for (VertexId v = 0; v < n; ++v) builder.AddVertex(g.label(v));
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  return builder.Build();
}

bool GraphsIdentical(const Graph& a, const Graph& b) {
  if (a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges()) {
    return false;
  }
  for (VertexId v = 0; v < a.NumVertices(); ++v) {
    if (a.label(v) != b.label(v)) return false;
    auto na = a.OutNeighbors(v);
    auto nb = b.OutNeighbors(v);
    if (!std::equal(na.begin(), na.end(), nb.begin(), nb.end())) return false;
  }
  return true;
}

StatusOr<MaintenanceResult> ResummarizeAfterUpdates(
    const Graph& g, const Graph& previous_summary,
    std::span<const GraphUpdate> updates) {
  auto updated = ApplyUpdates(g, updates);
  if (!updated.ok()) return updated.status();

  MaintenanceResult result;
  result.updated_graph = std::move(updated).value();
  result.bisim = ComputeBisimulation(result.updated_graph);
  result.summary_changed =
      !GraphsIdentical(result.bisim.summary, previous_summary);
  return result;
}

}  // namespace bigindex
