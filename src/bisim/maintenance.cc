#include "bisim/maintenance.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <utility>

namespace bigindex {

StatusOr<UpdateDelta> NormalizeUpdates(const Graph& g,
                                       std::span<const GraphUpdate> updates) {
  const size_t n = g.NumVertices();
  // Last op on an edge wins; earlier ops on the same edge are redundant.
  std::map<std::pair<VertexId, VertexId>, bool> last_op;  // -> present after
  size_t redundant = 0;
  for (const GraphUpdate& up : updates) {
    if (up.source >= n || up.target >= n) {
      return Status::InvalidArgument("update references out-of-range vertex");
    }
    auto [it, inserted] = last_op.emplace(
        std::make_pair(up.source, up.target),
        up.kind == GraphUpdate::Kind::kAddEdge);
    if (!inserted) {
      ++redundant;  // an earlier op on this edge is superseded
      it->second = up.kind == GraphUpdate::Kind::kAddEdge;
    }
  }
  UpdateDelta delta;
  delta.redundant = redundant;
  for (const auto& [edge, present_after] : last_op) {
    const bool present_before = g.HasEdge(edge.first, edge.second);
    if (present_after == present_before) {
      ++delta.redundant;  // net no-op against the current graph
    } else if (present_after) {
      delta.added.push_back(edge);
    } else {
      delta.removed.push_back(edge);
    }
  }
  // std::map iteration already yields (source, target) order.
  return delta;
}

Graph ApplyDelta(const Graph& g, const UpdateDelta& delta) {
  const size_t n = g.NumVertices();
  GraphBuilder builder;
  builder.Reserve(n, g.NumEdges() + delta.added.size());
  for (VertexId v = 0; v < n; ++v) builder.AddVertex(g.label(v));
  for (const auto& [u, v] : g.Edges()) {
    if (!std::binary_search(delta.removed.begin(), delta.removed.end(),
                            std::make_pair(u, v))) {
      builder.AddEdge(u, v);
    }
  }
  for (const auto& [u, v] : delta.added) builder.AddEdge(u, v);
  auto built = builder.Build();
  assert(built.ok());  // endpoints validated by NormalizeUpdates
  return std::move(built).value();
}

StatusOr<Graph> ApplyUpdates(const Graph& g,
                             std::span<const GraphUpdate> updates) {
  auto delta = NormalizeUpdates(g, updates);
  if (!delta.ok()) return delta.status();
  return ApplyDelta(g, *delta);
}

bool GraphsIdentical(const Graph& a, const Graph& b) {
  if (a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges()) {
    return false;
  }
  for (VertexId v = 0; v < a.NumVertices(); ++v) {
    if (a.label(v) != b.label(v)) return false;
    auto na = a.OutNeighbors(v);
    auto nb = b.OutNeighbors(v);
    if (!std::equal(na.begin(), na.end(), nb.begin(), nb.end())) return false;
  }
  return true;
}

UpdateDelta ProjectDeltaToSummary(const Graph& g,
                                  std::span<const VertexId> partition,
                                  const Graph& old_summary,
                                  const UpdateDelta& delta) {
  // Candidate block pairs: only pairs under a delta edge can change. Keep
  // one representative source per pair — stability makes every member of the
  // source block equivalent for the presence test.
  struct Candidate {
    VertexId bu, bv, rep;
  };
  std::vector<Candidate> pairs;
  pairs.reserve(delta.added.size() + delta.removed.size());
  for (const auto& [u, v] : delta.added) {
    pairs.push_back({partition[u], partition[v], u});
  }
  for (const auto& [u, v] : delta.removed) {
    pairs.push_back({partition[u], partition[v], u});
  }
  std::sort(pairs.begin(), pairs.end(), [](const Candidate& a,
                                           const Candidate& b) {
    return a.bu != b.bu ? a.bu < b.bu : a.bv < b.bv;
  });

  UpdateDelta out;
  for (size_t i = 0; i < pairs.size(); ++i) {
    const Candidate& c = pairs[i];
    if (i > 0 && pairs[i - 1].bu == c.bu && pairs[i - 1].bv == c.bv) continue;
    const bool before = old_summary.HasEdge(c.bu, c.bv);
    bool after = false;
    for (VertexId w : g.OutNeighbors(c.rep)) {
      if (partition[w] == c.bv) {
        after = true;
        break;
      }
    }
    if (after && !before) out.added.emplace_back(c.bu, c.bv);
    if (before && !after) out.removed.emplace_back(c.bu, c.bv);
  }
  return out;  // pair order is sorted, so added/removed are too
}

StatusOr<MaintenanceResult> ResummarizeAfterUpdates(
    const Graph& g, const Graph& previous_summary,
    std::span<const GraphUpdate> updates) {
  auto updated = ApplyUpdates(g, updates);
  if (!updated.ok()) return updated.status();

  MaintenanceResult result;
  result.updated_graph = std::move(updated).value();
  result.bisim = ComputeBisimulation(result.updated_graph);
  result.summary_changed =
      !GraphsIdentical(result.bisim.summary, previous_summary);
  return result;
}

}  // namespace bigindex
