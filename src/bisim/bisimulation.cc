#include "bisim/bisimulation.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace bigindex {
namespace {

// FNV-1a over a word sequence; exactness of the partition does not depend on
// this (collisions are resolved by full comparison in the bucket map).
struct VecHash {
  size_t operator()(const std::vector<uint32_t>& v) const {
    size_t h = 1469598103934665603ULL;
    for (uint32_t x : v) {
      h ^= x;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

// Assigns dense ids to distinct signatures.
class SignatureInterner {
 public:
  uint32_t Intern(std::vector<uint32_t>&& sig) {
    auto [it, inserted] = map_.try_emplace(std::move(sig), next_);
    if (inserted) ++next_;
    return it->second;
  }
  size_t size() const { return next_; }
  void Reset() {
    map_.clear();
    next_ = 0;
  }

 private:
  std::unordered_map<std::vector<uint32_t>, uint32_t, VecHash> map_;
  uint32_t next_ = 0;
};

}  // namespace

BisimMapping::BisimMapping(std::vector<VertexId> vertex_to_super,
                           size_t num_blocks)
    : vertex_to_super_(std::move(vertex_to_super)) {
  member_offsets_.assign(num_blocks + 1, 0);
  members_.resize(vertex_to_super_.size());
  for (VertexId s : vertex_to_super_) member_offsets_[s + 1]++;
  std::partial_sum(member_offsets_.begin(), member_offsets_.end(),
                   member_offsets_.begin());
  std::vector<uint64_t> cursor(member_offsets_.begin(),
                               member_offsets_.end() - 1);
  for (VertexId v = 0; v < vertex_to_super_.size(); ++v) {
    members_[cursor[vertex_to_super_[v]]++] = v;
  }
}

BisimResult ComputeBisimulation(const Graph& g, const BisimOptions& options) {
  TRACE_SPAN("bisim/compute");
  static Counter& runs = MetricsRegistry::Global().GetCounter(
      "bigindex_bisim_runs_total", "Bisimulation summarizations computed");
  static Counter& rounds_total = MetricsRegistry::Global().GetCounter(
      "bigindex_bisim_rounds_total",
      "Signature-refinement rounds across all runs");
  static Counter& signatures = MetricsRegistry::Global().GetCounter(
      "bigindex_bisim_signatures_total",
      "Vertex signatures computed (vertices x rounds)");
  runs.Inc();

  const size_t n = g.NumVertices();
  BisimResult result;

  // Round 0: partition by label, densely renumbered.
  std::vector<uint32_t> block(n);
  size_t num_blocks = 0;
  {
    std::unordered_map<LabelId, uint32_t> label_rank;
    for (VertexId v = 0; v < n; ++v) {
      auto [it, inserted] =
          label_rank.try_emplace(g.label(v), static_cast<uint32_t>(num_blocks));
      if (inserted) ++num_blocks;
      block[v] = it->second;
    }
  }

  SignatureInterner interner;
  std::vector<uint32_t> next_block(n);
  size_t rounds = 0;
  while (true) {
    if (options.max_rounds != 0 && rounds >= options.max_rounds) break;
    TRACE_SPAN("bisim/round");
    interner.Reset();
    std::vector<uint32_t> sig;
    const bool use_out = options.direction != BisimDirection::kPredecessor;
    const bool use_in = options.direction != BisimDirection::kSuccessor;
    for (VertexId v = 0; v < n; ++v) {
      sig.clear();
      sig.push_back(block[v]);
      if (use_out) {
        size_t first = sig.size();
        for (VertexId w : g.OutNeighbors(v)) sig.push_back(block[w]);
        std::sort(sig.begin() + first, sig.end());
        sig.erase(std::unique(sig.begin() + first, sig.end()), sig.end());
        // Separator keeps out- and in-sets from blending into one run.
        if (use_in) sig.push_back(std::numeric_limits<uint32_t>::max());
      }
      if (use_in) {
        size_t first = sig.size();
        for (VertexId w : g.InNeighbors(v)) sig.push_back(block[w]);
        std::sort(sig.begin() + first, sig.end());
        sig.erase(std::unique(sig.begin() + first, sig.end()), sig.end());
      }
      next_block[v] = interner.Intern(std::vector<uint32_t>(sig));
    }
    ++rounds;
    size_t new_count = interner.size();
    bool stable = (new_count == num_blocks);
    num_blocks = new_count;
    block.swap(next_block);
    if (stable) break;
  }
  result.refinement_rounds = rounds;
  rounds_total.Inc(rounds);
  signatures.Inc(static_cast<uint64_t>(rounds) * n);

  // The interner's ids are dense but arbitrary; keep them (supernode ids are
  // layer-local anyway).
  std::vector<VertexId> assignment(block.begin(), block.end());
  result.mapping = BisimMapping(std::move(assignment), num_blocks);

  // Materialize the quotient graph. Supernode label = label of any member
  // (identical within a block by construction).
  TRACE_SPAN("bisim/materialize");
  GraphBuilder builder;
  builder.Reserve(num_blocks, g.NumEdges());
  {
    std::vector<LabelId> super_label(num_blocks, kInvalidLabel);
    for (VertexId v = 0; v < n; ++v) super_label[block[v]] = g.label(v);
    for (size_t s = 0; s < num_blocks; ++s) builder.AddVertex(super_label[s]);
  }
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId w : g.OutNeighbors(u)) {
      builder.AddEdge(block[u], block[w]);  // duplicates collapsed by Build()
    }
  }
  auto built = builder.Build();
  assert(built.ok());
  result.summary = std::move(built).value();
  return result;
}

bool IsStableBisimulation(const Graph& g, const BisimMapping& mapping) {
  const size_t n = g.NumVertices();
  if (mapping.NumVertices() != n) return false;

  // Labels uniform within blocks.
  for (VertexId s = 0; s < mapping.NumSupernodes(); ++s) {
    auto members = mapping.Members(s);
    if (members.empty()) return false;
    LabelId l = g.label(members.front());
    for (VertexId v : members) {
      if (g.label(v) != l) return false;
    }
  }

  // Successor-block sets uniform within blocks.
  auto successor_blocks = [&](VertexId v) {
    std::vector<VertexId> out;
    for (VertexId w : g.OutNeighbors(v)) out.push_back(mapping.SuperOf(w));
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  };
  for (VertexId s = 0; s < mapping.NumSupernodes(); ++s) {
    auto members = mapping.Members(s);
    auto expected = successor_blocks(members.front());
    for (size_t i = 1; i < members.size(); ++i) {
      if (successor_blocks(members[i]) != expected) return false;
    }
  }
  return true;
}

}  // namespace bigindex
