#include "bisim/bisimulation.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "engine/executor.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bigindex {
namespace {

// FNV-1a over a word sequence; exactness of the partition does not depend on
// this (collisions are resolved by full comparison in the bucket map).
uint64_t HashSignature(std::span<const uint32_t> v) {
  uint64_t h = 1469598103934665603ULL;
  for (uint32_t x : v) {
    h ^= x;
    h *= 1099511628211ULL;
  }
  return h;
}

// Assigns dense ids to distinct signatures in first-insertion order.
// Signatures are bucketed by their 64-bit hash; a bucket holds the ids of
// every signature sharing that hash, resolved by full comparison.
class SignatureInterner {
 public:
  /// Id of `sig` (hash must be HashSignature(sig)); copies the signature into
  /// the interner only on first sight.
  uint32_t Intern(std::span<const uint32_t> sig, uint64_t hash) {
    std::vector<uint32_t>& bucket = buckets_[hash];
    for (uint32_t id : bucket) {
      const std::vector<uint32_t>& known = sigs_[id];
      if (known.size() == sig.size() &&
          std::equal(known.begin(), known.end(), sig.begin())) {
        return id;
      }
    }
    uint32_t id = static_cast<uint32_t>(sigs_.size());
    sigs_.emplace_back(sig.begin(), sig.end());
    hashes_.push_back(hash);
    bucket.push_back(id);
    return id;
  }

  size_t size() const { return sigs_.size(); }

  /// Distinct signatures in id order (and their hashes), for merging.
  const std::vector<std::vector<uint32_t>>& sigs() const { return sigs_; }
  uint64_t hash(uint32_t id) const { return hashes_[id]; }

  void Reset() {
    buckets_.clear();
    sigs_.clear();
    hashes_.clear();
  }

 private:
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets_;
  std::vector<std::vector<uint32_t>> sigs_;
  std::vector<uint64_t> hashes_;
};

}  // namespace

namespace {
constexpr uint64_t kZeroOffsets[1] = {0};
}  // namespace

std::span<const uint64_t> BisimMapping::EmptyOffsets() {
  return {kZeroOffsets, 1};
}

BisimMapping::BisimMapping(std::span<const VertexId> vertex_to_super,
                           size_t num_blocks) {
  const size_t n = vertex_to_super.size();
  auto arena = std::make_shared<Arena>(
      Arena::AlignedSize<VertexId>(n) +
      Arena::AlignedSize<uint64_t>(num_blocks + 1) +
      Arena::AlignedSize<VertexId>(n));
  std::span<VertexId> v2s = arena->Carve<VertexId>(n);
  std::span<uint64_t> offsets = arena->Carve<uint64_t>(num_blocks + 1);
  std::span<VertexId> members = arena->Carve<VertexId>(n);

  std::copy(vertex_to_super.begin(), vertex_to_super.end(), v2s.begin());
  std::fill(offsets.begin(), offsets.end(), 0);
  for (VertexId s : v2s) offsets[s + 1]++;
  std::partial_sum(offsets.begin(), offsets.end(), offsets.begin());
  std::vector<uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (VertexId v = 0; v < n; ++v) members[cursor[v2s[v]]++] = v;

  storage_ = std::move(arena);
  vertex_to_super_ = v2s;
  member_offsets_ = offsets;
  members_ = members;
}

BisimMapping BisimMapping::FromStorage(
    StorageHandle storage, std::span<const VertexId> vertex_to_super,
    std::span<const uint64_t> member_offsets,
    std::span<const VertexId> members) {
  BisimMapping m;
  m.storage_ = std::move(storage);
  m.vertex_to_super_ = vertex_to_super;
  m.member_offsets_ = member_offsets;
  m.members_ = members;
  return m;
}

BisimResult ComputeBisimulation(const Graph& g, const BisimOptions& options) {
  TRACE_SPAN("bisim/compute");
  static Counter& runs = MetricsRegistry::Global().GetCounter(
      "bigindex_bisim_runs_total", "Bisimulation summarizations computed");
  static Counter& rounds_total = MetricsRegistry::Global().GetCounter(
      "bigindex_bisim_rounds_total",
      "Signature-refinement rounds across all runs");
  static Counter& signatures = MetricsRegistry::Global().GetCounter(
      "bigindex_bisim_signatures_total",
      "Vertex signatures computed (vertices x rounds)");
  static Counter& parallel_chunks = MetricsRegistry::Global().GetCounter(
      "bigindex_build_parallel_chunks_total",
      "Vertex-range chunks processed by parallel signature refinement");
  static Counter& parallel_rounds = MetricsRegistry::Global().GetCounter(
      "bigindex_build_parallel_rounds_total",
      "Refinement rounds executed with more than one chunk");
  runs.Inc();

  const size_t n = g.NumVertices();
  BisimResult result;

  // Round 0: partition by label, densely renumbered.
  std::vector<uint32_t> block(n);
  size_t num_blocks = 0;
  {
    std::unordered_map<LabelId, uint32_t> label_rank;
    for (VertexId v = 0; v < n; ++v) {
      auto [it, inserted] =
          label_rank.try_emplace(g.label(v), static_cast<uint32_t>(num_blocks));
      if (inserted) ++num_blocks;
      block[v] = it->second;
    }
  }

  // Chunking: each chunk is a contiguous vertex range that is signed and
  // locally deduplicated independently. More chunks than workers lets the
  // pool's dynamic scheduling absorb degree skew; tiny graphs stay serial
  // (one chunk) because the fan-out would cost more than the round.
  ExecutorPool* pool =
      (options.pool != nullptr && options.pool->num_workers() > 1) ? options.pool
                                                                   : nullptr;
  size_t num_chunks = 1;
  const size_t min_chunk = std::max<size_t>(options.min_chunk_vertices, 1);
  if (pool != nullptr && n >= 2 * min_chunk) {
    num_chunks = std::min(n / min_chunk, pool->num_workers() * 4);
    num_chunks = std::max<size_t>(num_chunks, 1);
  }
  auto chunk_begin = [n, num_chunks](size_t c) { return n * c / num_chunks; };

  const bool use_out = options.direction != BisimDirection::kPredecessor;
  const bool use_in = options.direction != BisimDirection::kSuccessor;
  const CsrView out = g.Out();
  const CsrView in = g.In();

  std::vector<SignatureInterner> locals(num_chunks);
  SignatureInterner global;
  std::vector<uint32_t> next_block(n);
  size_t rounds = 0;
  while (true) {
    if (options.max_rounds != 0 && rounds >= options.max_rounds) break;
    TRACE_SPAN("bisim/round");

    // Parallel phase: per-chunk signature construction + local interning.
    // next_block[v] temporarily holds v's *chunk-local* block id.
    auto sign_chunk = [&](size_t, size_t c) {
      SignatureInterner& local = locals[c];
      local.Reset();
      std::vector<uint32_t> sig;
      const size_t begin = chunk_begin(c), end = chunk_begin(c + 1);
      for (VertexId v = begin; v < end; ++v) {
        sig.clear();
        sig.push_back(block[v]);
        if (use_out) {
          size_t first = sig.size();
          const auto [b, e] = out[v];
          for (uint64_t i = b; i < e; ++i) sig.push_back(block[out.Slot(i)]);
          std::sort(sig.begin() + first, sig.end());
          sig.erase(std::unique(sig.begin() + first, sig.end()), sig.end());
          // Separator keeps out- and in-sets from blending into one run.
          if (use_in) sig.push_back(std::numeric_limits<uint32_t>::max());
        }
        if (use_in) {
          size_t first = sig.size();
          const auto [b, e] = in[v];
          for (uint64_t i = b; i < e; ++i) sig.push_back(block[in.Slot(i)]);
          std::sort(sig.begin() + first, sig.end());
          sig.erase(std::unique(sig.begin() + first, sig.end()), sig.end());
        }
        next_block[v] = local.Intern(sig, HashSignature(sig));
      }
    };
    if (pool != nullptr && num_chunks > 1) {
      TRACE_SPAN("build/parallel/signatures");
      pool->ParallelFor(num_chunks, sign_chunk);
      parallel_chunks.Inc(num_chunks);
      parallel_rounds.Inc();
    } else {
      for (size_t c = 0; c < num_chunks; ++c) sign_chunk(0, c);
    }

    // Serial merge: assign global ids to each chunk's distinct signatures in
    // chunk order. Local ids are first-occurrence-ordered within their chunk
    // and chunks are ascending vertex ranges, so the global ids land in
    // first-occurrence order of the whole vertex scan — exactly the ids a
    // fully serial scan assigns, independent of the chunk count.
    TRACE_SPAN("build/parallel/merge");
    global.Reset();
    std::vector<std::vector<uint32_t>> remap(num_chunks);
    for (size_t c = 0; c < num_chunks; ++c) {
      const auto& sigs = locals[c].sigs();
      remap[c].resize(sigs.size());
      for (uint32_t local_id = 0; local_id < sigs.size(); ++local_id) {
        remap[c][local_id] =
            global.Intern(sigs[local_id], locals[c].hash(local_id));
      }
    }

    // Rewrite chunk-local ids as global ids (cheap, memory-bound).
    auto remap_chunk = [&](size_t, size_t c) {
      const size_t begin = chunk_begin(c), end = chunk_begin(c + 1);
      for (VertexId v = begin; v < end; ++v) {
        next_block[v] = remap[c][next_block[v]];
      }
    };
    if (pool != nullptr && num_chunks > 1) {
      pool->ParallelFor(num_chunks, remap_chunk);
    } else {
      for (size_t c = 0; c < num_chunks; ++c) remap_chunk(0, c);
    }

    ++rounds;
    size_t new_count = global.size();
    bool stable = (new_count == num_blocks);
    num_blocks = new_count;
    block.swap(next_block);
    if (stable) break;
  }
  result.refinement_rounds = rounds;
  rounds_total.Inc(rounds);
  signatures.Inc(static_cast<uint64_t>(rounds) * n);

  // The interner's ids are dense but arbitrary; keep them (supernode ids are
  // layer-local anyway).
  result.mapping = BisimMapping(block, num_blocks);

  // Materialize the quotient graph. Supernode label = label of any member
  // (identical within a block by construction).
  TRACE_SPAN("bisim/materialize");
  GraphBuilder builder;
  builder.Reserve(num_blocks, g.NumEdges());
  {
    std::vector<LabelId> super_label(num_blocks, kInvalidLabel);
    for (VertexId v = 0; v < n; ++v) super_label[block[v]] = g.label(v);
    for (size_t s = 0; s < num_blocks; ++s) builder.AddVertex(super_label[s]);
  }
  for (VertexId u = 0; u < n; ++u) {
    const auto [b, e] = out[u];
    for (uint64_t i = b; i < e; ++i) {
      builder.AddEdge(block[u], block[out.Slot(i)]);  // dups collapse in Build
    }
  }
  auto built = builder.Build();
  assert(built.ok());
  result.summary = std::move(built).value();
  return result;
}

bool IsStableBisimulation(const Graph& g, const BisimMapping& mapping) {
  const size_t n = g.NumVertices();
  if (mapping.NumVertices() != n) return false;

  // Labels uniform within blocks.
  for (VertexId s = 0; s < mapping.NumSupernodes(); ++s) {
    auto members = mapping.Members(s);
    if (members.empty()) return false;
    LabelId l = g.label(members.front());
    for (VertexId v : members) {
      if (g.label(v) != l) return false;
    }
  }

  // Successor-block sets uniform within blocks.
  auto successor_blocks = [&](VertexId v) {
    std::vector<VertexId> out;
    for (VertexId w : g.OutNeighbors(v)) out.push_back(mapping.SuperOf(w));
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  };
  for (VertexId s = 0; s < mapping.NumSupernodes(); ++s) {
    auto members = mapping.Members(s);
    auto expected = successor_blocks(members.front());
    for (size_t i = 1; i < members.size(); ++i) {
      if (successor_blocks(members[i]) != expected) return false;
    }
  }
  return true;
}

}  // namespace bigindex
