// Maintenance of summaries under data-graph updates (Sec. 3.2,
// "Maintenance of BiG-index").
//
// The paper adopts an external incremental-bisimulation algorithm [Deng et
// al., TKDE'13] and notes the index "can be recomputed occasionally". We
// implement the pragmatic variant: apply an update batch, recompute the
// affected layer's maximal bisimulation (our refinement is fast), and report
// whether the *summary* changed at all — when it did not, upper layers of a
// BiG-index are provably still valid and are reused (see
// BigIndex::ApplyUpdates). The unchanged-summary detection is conservative
// (exact graph equality under our deterministic block numbering), never
// unsound.

#ifndef BIGINDEX_BISIM_MAINTENANCE_H_
#define BIGINDEX_BISIM_MAINTENANCE_H_

#include <span>
#include <vector>

#include "bisim/bisimulation.h"
#include "graph/graph.h"
#include "util/status.h"

namespace bigindex {

/// One edge-level update to a data graph.
struct GraphUpdate {
  enum class Kind { kAddEdge, kRemoveEdge };
  Kind kind = Kind::kAddEdge;
  VertexId source = kInvalidVertex;
  VertexId target = kInvalidVertex;
};

/// The net effect of an update batch against a concrete graph: which edges
/// are actually added, which actually removed, and how many batch entries
/// were redundant (duplicate ops, add-then-remove pairs, adds of present
/// edges, removes of absent ones). Within a batch the *last* op on an edge
/// wins, matching sequential application semantics; self-loops are ordinary
/// edges. `added` and `removed` are sorted by (source, target), disjoint,
/// and each edge appears at most once.
struct UpdateDelta {
  std::vector<std::pair<VertexId, VertexId>> added;
  std::vector<std::pair<VertexId, VertexId>> removed;
  size_t redundant = 0;

  bool empty() const { return added.empty() && removed.empty(); }
};

/// Normalizes an update batch against `g`. Every path that applies updates
/// (wholesale rebuild, incremental refinement, sharded routing) goes through
/// this so batch-order corner cases — duplicates, add-then-remove of the
/// same edge, self-loops — get one shared semantics. Out-of-range endpoints
/// fail with InvalidArgument.
StatusOr<UpdateDelta> NormalizeUpdates(const Graph& g,
                                       std::span<const GraphUpdate> updates);

/// Applies `delta` (as produced by NormalizeUpdates against `g`) and returns
/// the updated graph.
Graph ApplyDelta(const Graph& g, const UpdateDelta& delta);

/// Applies `updates` in order and returns the updated graph. Removing an
/// absent edge or adding a duplicate is a no-op; out-of-range endpoints fail
/// with InvalidArgument.
StatusOr<Graph> ApplyUpdates(const Graph& g,
                             std::span<const GraphUpdate> updates);

/// True iff a and b are the same graph: identical vertex labels and edge
/// sets under identical vertex numbering.
bool GraphsIdentical(const Graph& a, const Graph& b);

/// Projects a base-level edge delta onto the summary of a partition that is
/// stable for the *updated* graph `g`. Under stability a summary edge
/// (B_u, B_v) exists iff any one member of B_u has an out-edge into B_v, so
/// only block pairs touched by a delta edge can flip and each is decided by
/// one O(deg) scan of its representative source — the projection costs
/// O(|delta| * max_deg), independent of |V| + |E|.
///
/// `partition[x]` is x's block id, already in `old_summary`'s vertex
/// numbering; `old_summary` is the pre-update summary of the same partition.
/// The result obeys UpdateDelta's contract (sorted by (source, target),
/// disjoint, each edge at most once). Calling this with a partition that is
/// NOT stable for `g` yields garbage — maintenance only uses it after the
/// no-split probe proves stability.
UpdateDelta ProjectDeltaToSummary(const Graph& g,
                                  std::span<const VertexId> partition,
                                  const Graph& old_summary,
                                  const UpdateDelta& delta);

/// Result of re-summarizing a layer after updates.
struct MaintenanceResult {
  Graph updated_graph;
  BisimResult bisim;
  /// False iff the new summary is identical to `previous_summary`, in which
  /// case every layer built above it remains valid.
  bool summary_changed = true;
};

/// Applies `updates` to `g` and recomputes its summary; compares against
/// `previous_summary` to fill summary_changed.
StatusOr<MaintenanceResult> ResummarizeAfterUpdates(
    const Graph& g, const Graph& previous_summary,
    std::span<const GraphUpdate> updates);

}  // namespace bigindex

#endif  // BIGINDEX_BISIM_MAINTENANCE_H_
