// Maximal bisimulation summarization (Sec. 2, "Graph bisimulation" and
// "Graph summarization Bisim(G)").
//
// Two vertices are bisimilar iff they carry the same label and their successor
// sets match up block-wise (the relation of Sec. 2; Example 2.1's "their child
// node is bisimilar"). We compute the *maximal* bisimulation — the coarsest
// stable partition refining the label partition — by iterated signature
// refinement: each round re-partitions vertices by
// (current block, {blocks of out-neighbors}), and the fixpoint is reached when
// no round splits a block. Refinement only ever splits, so fixpoint detection
// is a block-count comparison.
//
// The quotient is materialized as another Graph (supernodes, edges
// {([u],[v]) | (u,v) in E}); the hash-table reverse mapping Bisim^-1 of the
// paper is the BisimMapping CSR (supernode -> members).
//
// Rounds parallelize per block-signature (cf. Rau et al.'s k-bisimulation
// analysis): vertex ranges are hashed and locally deduplicated on an
// ExecutorPool, then a serial merge assigns global block ids in
// first-occurrence order, so every pool size yields the exact partition the
// serial scan produces (see BisimOptions::pool).

#ifndef BIGINDEX_BISIM_BISIMULATION_H_
#define BIGINDEX_BISIM_BISIMULATION_H_

#include <span>
#include <vector>

#include "graph/csr.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace bigindex {

class ExecutorPool;

/// The vertex <-> supernode correspondence of one Bisim application
/// (the paper's equiv(v) / [v]_equiv and its reverse Bisim^-1).
///
/// Like Graph, the three arrays live back to back in one arena (or one
/// index-image section), so copies are shallow and image loads are
/// zero-copy.
class BisimMapping {
 public:
  BisimMapping() = default;

  /// Builds the mapping from a vertex -> block assignment with
  /// `num_blocks` dense block ids.
  BisimMapping(std::span<const VertexId> vertex_to_super, size_t num_blocks);

  /// Bisim(v): the supernode containing v.
  VertexId SuperOf(VertexId v) const { return vertex_to_super_[v]; }

  /// Bisim^-1(s): the member vertices of supernode s, ascending.
  std::span<const VertexId> Members(VertexId s) const {
    return {members_.data() + member_offsets_[s],
            member_offsets_[s + 1] - member_offsets_[s]};
  }

  /// Bisim^-1 as a HalfInterval view over the flat members array.
  CsrView MembersView() const {
    return {member_offsets_.data(), members_.data()};
  }

  size_t NumSupernodes() const { return member_offsets_.size() - 1; }
  size_t NumVertices() const { return vertex_to_super_.size(); }

  /// Raw flat arrays in canonical (index-image) order. For serializers.
  std::span<const VertexId> VertexToSuper() const { return vertex_to_super_; }
  std::span<const uint64_t> MemberOffsets() const { return member_offsets_; }
  std::span<const VertexId> MembersArray() const { return members_; }

  /// Wires a mapping over externally owned, already-validated arrays (the
  /// mmap'd index image). No checks — see core/index_image.
  static BisimMapping FromStorage(StorageHandle storage,
                                  std::span<const VertexId> vertex_to_super,
                                  std::span<const uint64_t> member_offsets,
                                  std::span<const VertexId> members);

 private:
  StorageHandle storage_;
  std::span<const VertexId> vertex_to_super_;
  std::span<const uint64_t> member_offsets_ = EmptyOffsets();  // CSR
  std::span<const VertexId> members_;

  static std::span<const uint64_t> EmptyOffsets();
};

/// Result of summarizing one graph.
struct BisimResult {
  Graph summary;        // Bisim(G), supernode labels = member labels
  BisimMapping mapping;  // v <-> [v]_equiv
  size_t refinement_rounds = 0;  // rounds until fixpoint (diagnostics)
};

/// Which adjacency the bisimulation relation observes. The paper adopts the
/// successor-based relation (its Sec. 2 definition and Example 2.1); the
/// other variants realize the "other summarization formalisms" of the
/// conclusion's future work. All three quotients are path-preserving —
/// F&B (kBoth) is the finest, so it preserves the most structure and
/// compresses the least.
enum class BisimDirection {
  kSuccessor,    // u ~ v iff same label and matching out-neighbor blocks
  kPredecessor,  // ... matching in-neighbor blocks
  kBoth,         // F&B-bisimulation: both sides must match
};

/// Options for ComputeBisimulation.
struct BisimOptions {
  /// Hard cap on refinement rounds; 0 means run to fixpoint. A capped run
  /// yields a partition that is *coarser* than maximal bisimulation and NOT
  /// guaranteed stable — only the ablation bench uses caps.
  size_t max_rounds = 0;

  /// Relation variant (see BisimDirection).
  BisimDirection direction = BisimDirection::kSuccessor;

  /// Worker pool for per-round parallel signature computation; nullptr (or a
  /// pool with no workers) runs serially. The refined partition is
  /// byte-identical for every pool size: block ids are always assigned in
  /// first-occurrence order of the signatures over the vertex scan, which is
  /// invariant under the chunking the pool introduces.
  ExecutorPool* pool = nullptr;

  /// Minimum vertices per chunk before the pool is engaged; graphs smaller
  /// than two chunks run serially because the fan-out would cost more than
  /// the round. Tests lower it to force the chunked path on tiny graphs.
  size_t min_chunk_vertices = 2048;
};

/// Computes the maximal bisimulation summary of `g`.
BisimResult ComputeBisimulation(const Graph& g, const BisimOptions& options = {});

/// Verifies that `mapping` is a stable bisimulation partition of `g`:
/// members of a block share a label, and whenever u has an edge into block B,
/// every u' in u's block has an edge into B. Used by tests and the
/// maintenance path. O(|E| log |E|).
bool IsStableBisimulation(const Graph& g, const BisimMapping& mapping);

}  // namespace bigindex

#endif  // BIGINDEX_BISIM_BISIMULATION_H_
