// Deterministic pseudo-random number generation for data generators, graph
// sampling, and property tests.
//
// Everything in the library that is randomized takes an explicit seed so runs
// are reproducible; benchmarks and tests never consume global RNG state.

#ifndef BIGINDEX_UTIL_RANDOM_H_
#define BIGINDEX_UTIL_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace bigindex {

/// SplitMix64 PRNG: tiny state, excellent statistical quality for simulation
/// workloads, and trivially seedable (any 64-bit value works).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97f4A7C15ULL) {}

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97f4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) {
    assert(bound > 0);
    return Next() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    assert(lo <= hi);
    return lo + Uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

/// Samples from a Zipf(s) distribution over {0, ..., n-1} using a precomputed
/// cumulative table. Used to model the heavy label skew of real knowledge
/// graphs (few types such as Person/Film cover most vertices).
class ZipfSampler {
 public:
  /// n: domain size; s: skew exponent (s = 0 is uniform; ~1 is typical).
  ZipfSampler(size_t n, double s) : cdf_(n) {
    assert(n > 0);
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = total;
    }
    for (size_t i = 0; i < n; ++i) cdf_[i] /= total;
  }

  /// Draws one value in [0, n).
  size_t Sample(Rng& rng) const {
    double u = rng.NextDouble();
    // Binary search over the CDF.
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  size_t domain_size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace bigindex

#endif  // BIGINDEX_UTIL_RANDOM_H_
