// Lightweight error-handling primitives in the RocksDB/Abseil tradition.
//
// The library does not use exceptions (see DESIGN.md, "Conventions"); fallible
// operations return Status or StatusOr<T> instead.

#ifndef BIGINDEX_UTIL_STATUS_H_
#define BIGINDEX_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace bigindex {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kCorruption,
  kIOError,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kDeadlineExceeded,
  kUnavailable,
};

/// Result of a fallible operation: an error code plus human-readable message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy (the message
/// is empty on the fast path).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  /// A per-request deadline expired before (or while) the work ran. The
  /// request produced no partial results.
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// Transient overload / shutdown: the caller may retry later, ideally with
  /// backoff. This is the serving layer's backpressure signal.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>", for logs and test failure output.
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Dereferencing a non-OK
/// StatusOr is a programming error (checked by assert in debug builds).
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT: implicit
    assert(!status_.ok() && "OK status requires a value");
  }
  StatusOr(T value)  // NOLINT: implicit by design, mirrors absl::StatusOr
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define BIGINDEX_RETURN_IF_ERROR(expr)            \
  do {                                            \
    ::bigindex::Status _st = (expr);              \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace bigindex

#endif  // BIGINDEX_UTIL_STATUS_H_
