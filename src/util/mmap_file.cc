#include "util/mmap_file.h"

#include <cstring>
#include <fstream>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define BIGINDEX_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace bigindex {
namespace {

#if BIGINDEX_HAVE_MMAP
/// Unmaps the region when the last handle copy dies. Non-copyable: a copy's
/// destructor would unmap the region out from under the original.
struct Mapping {
  Mapping(void* a, size_t l) : addr(a), len(l) {}
  Mapping(const Mapping&) = delete;
  Mapping& operator=(const Mapping&) = delete;
  ~Mapping() {
    if (addr != nullptr && len != 0) munmap(addr, len);
  }
  void* const addr;
  const size_t len;
};
#endif

}  // namespace

StatusOr<MappedFile> MappedFile::ReadIntoHeap(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot open " + path);
  std::streamoff size = in.tellg();
  if (size < 0) return Status::IOError("cannot stat " + path);
  auto buffer = std::make_shared<std::vector<std::byte>>(
      static_cast<size_t>(size));
  in.seekg(0);
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(buffer->data()), size)) {
    return Status::IOError("short read on " + path);
  }
  const std::byte* data = buffer->data();
  return MappedFile(std::shared_ptr<const void>(buffer, buffer->data()), data,
                    static_cast<size_t>(size), /*is_mmap=*/false);
}

StatusOr<MappedFile> MappedFile::Open(const std::string& path) {
#if BIGINDEX_HAVE_MMAP
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open " + path);
  struct stat st;
  if (fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat " + path);
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::IOError(path + " is not a regular file");
  }
  size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return MappedFile(nullptr, nullptr, 0, /*is_mmap=*/true);
  }
  void* addr = mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference to the file
  if (addr == MAP_FAILED) return ReadIntoHeap(path);
  auto mapping = std::make_shared<Mapping>(addr, size);
  return MappedFile(std::shared_ptr<const void>(mapping, mapping->addr),
                    static_cast<const std::byte*>(addr), size,
                    /*is_mmap=*/true);
#else
  return ReadIntoHeap(path);
#endif
}

}  // namespace bigindex
