// Read-only memory mapping of whole files, with a heap-read fallback.
//
// The index-image loader wants the file bytes as one contiguous read-only
// region whose lifetime a StorageHandle can pin. On POSIX that is mmap(2);
// when mmap is unavailable (or fails for an exotic filesystem) we fall back
// to reading the file into a heap buffer — callers cannot tell the
// difference, they only lose the zero-copy property.

#ifndef BIGINDEX_UTIL_MMAP_FILE_H_
#define BIGINDEX_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <memory>
#include <string>

#include "util/status.h"

namespace bigindex {

/// A read-only view of an entire file, backed by mmap when possible.
///
/// The mapping (or fallback buffer) lives until the last shared_ptr copy of
/// the handle dies, so structures viewing into the region keep it alive by
/// holding the handle.
class MappedFile {
 public:
  /// Maps `path` read-only. Empty files map successfully with size() == 0.
  static StatusOr<MappedFile> Open(const std::string& path);

  const std::byte* data() const { return data_; }
  size_t size() const { return size_; }
  bool is_mmap() const { return is_mmap_; }

  /// Shared keep-alive for the mapped region; structures that view into the
  /// region store a copy so the mapping outlives the MappedFile object.
  std::shared_ptr<const void> handle() const { return handle_; }

 private:
  static StatusOr<MappedFile> ReadIntoHeap(const std::string& path);

  MappedFile(std::shared_ptr<const void> handle, const std::byte* data,
             size_t size, bool is_mmap)
      : handle_(std::move(handle)), data_(data), size_(size),
        is_mmap_(is_mmap) {}

  std::shared_ptr<const void> handle_;
  const std::byte* data_ = nullptr;
  size_t size_ = 0;
  bool is_mmap_ = false;
};

}  // namespace bigindex

#endif  // BIGINDEX_UTIL_MMAP_FILE_H_
