#include "util/status.h"

namespace bigindex {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = CodeName(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace bigindex
