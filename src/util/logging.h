// Minimal leveled logging to stderr. Benchmarks and index construction use it
// for progress reporting; the library core stays silent below kWarning.

#ifndef BIGINDEX_UTIL_LOGGING_H_
#define BIGINDEX_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace bigindex {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void LogMessage(LogLevel level, const std::string& msg);

/// Stream-style accumulator that emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace bigindex

#define BIGINDEX_LOG(level) \
  ::bigindex::internal::LogLine(::bigindex::LogLevel::level)

#endif  // BIGINDEX_UTIL_LOGGING_H_
