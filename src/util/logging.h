// Minimal leveled logging to stderr. Benchmarks and index construction use it
// for progress reporting; the library core stays silent below kWarning.

#ifndef BIGINDEX_UTIL_LOGGING_H_
#define BIGINDEX_UTIL_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

namespace bigindex {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void LogMessage(LogLevel level, const std::string& msg);

/// Stream-style accumulator that emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Returns true on the 1st, (n+1)th, (2n+1)th… bump of `counter` — the
/// occurrences BIGINDEX_LOG_EVERY_N actually emits. Relaxed ordering: the
/// counter is advisory and races only cost (or save) a log line.
inline bool LogEveryNShouldLog(std::atomic<uint64_t>& counter, uint64_t n) {
  if (n == 0) return true;
  return counter.fetch_add(1, std::memory_order_relaxed) % n == 0;
}

}  // namespace internal
}  // namespace bigindex

#define BIGINDEX_LOG(level) \
  ::bigindex::internal::LogLine(::bigindex::LogLevel::level)

/// Rate-limited logging: emits only every n-th execution of this call site
/// (the 1st, (n+1)th, …), so per-request warnings — overload rejections,
/// deadline misses — cannot flood stderr under load. The counter is per call
/// site and thread-safe. Usable exactly like BIGINDEX_LOG:
///
///   BIGINDEX_LOG_EVERY_N(kWarning, 1024) << "queue full, rejecting";
#define BIGINDEX_LOG_EVERY_N(level, n)                               \
  for (bool bigindex_log_now = ::bigindex::internal::LogEveryNShouldLog( \
           []() -> ::std::atomic<uint64_t>& {                        \
             static ::std::atomic<uint64_t> counter{0};              \
             return counter;                                         \
           }(),                                                      \
           (n));                                                     \
       bigindex_log_now; bigindex_log_now = false)                   \
  BIGINDEX_LOG(level)

#endif  // BIGINDEX_UTIL_LOGGING_H_
