// Wall-clock timing helpers used by benchmarks, the query-cost breakdowns,
// and the serving layer's per-request deadlines.

#ifndef BIGINDEX_UTIL_TIMER_H_
#define BIGINDEX_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>
#include <limits>

namespace bigindex {

/// Monotonic stopwatch. Restart() resets the origin; Elapsed*() reads without
/// resetting, so one timer can bracket several phases.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  uint64_t ElapsedMicros() const {
    return static_cast<uint64_t>(ElapsedSeconds() * 1e6);
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A monotonic point in time a piece of work must finish by. Value type,
/// cheap to copy; the default-constructed deadline never expires, so code can
/// thread a Deadline unconditionally and pay nothing when none was requested
/// (Expired() on a never-deadline is branch-only, no clock read).
///
/// Cancellation here is cooperative: holders poll Expired() at checkpoints
/// (the evaluator checks between candidate verifications, the serving layer
/// at admission and batch assembly) rather than being interrupted.
class Deadline {
 public:
  /// Never expires.
  Deadline() : deadline_(Clock::time_point::max()) {}

  /// Expires `budget_ms` from now. A non-positive budget is already expired.
  static Deadline After(double budget_ms) {
    Deadline d;
    d.deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double, std::milli>(
                                         budget_ms));
    return d;
  }

  /// The never-expiring deadline, spelled out.
  static Deadline Never() { return Deadline(); }

  bool IsNever() const { return deadline_ == Clock::time_point::max(); }

  bool Expired() const {
    return !IsNever() && Clock::now() >= deadline_;
  }

  /// Milliseconds until expiry: negative once expired, +infinity for Never().
  double RemainingMillis() const {
    if (IsNever()) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(deadline_ - Clock::now())
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point deadline_;
};

}  // namespace bigindex

#endif  // BIGINDEX_UTIL_TIMER_H_
