// Wall-clock timing helpers used by benchmarks and the query-cost breakdowns.

#ifndef BIGINDEX_UTIL_TIMER_H_
#define BIGINDEX_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace bigindex {

/// Monotonic stopwatch. Restart() resets the origin; Elapsed*() reads without
/// resetting, so one timer can bracket several phases.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  uint64_t ElapsedMicros() const {
    return static_cast<uint64_t>(ElapsedSeconds() * 1e6);
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace bigindex

#endif  // BIGINDEX_UTIL_TIMER_H_
