#include "ontology/ontology_io.h"

#include <fstream>
#include <sstream>

namespace bigindex {
namespace {

constexpr char kMagic[] = "bigindex-ontology v1";

bool NextRecord(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

StatusOr<Ontology> ReadOntology(std::istream& in, LabelDictionary& dict) {
  std::string line;
  if (!NextRecord(in, line) || line != kMagic) {
    return Status::Corruption("missing ontology header");
  }
  if (!NextRecord(in, line)) return Status::Corruption("missing size line");
  uint64_t m = 0;
  {
    std::istringstream sizes(line);
    if (!(sizes >> m)) return Status::Corruption("bad size line");
  }
  OntologyBuilder builder;
  for (uint64_t i = 0; i < m; ++i) {
    if (!NextRecord(in, line)) {
      return Status::Corruption("truncated edge section");
    }
    size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      return Status::Corruption("edge line missing tab: " + line);
    }
    LabelId sub = dict.Intern(std::string_view(line).substr(0, tab));
    LabelId super = dict.Intern(std::string_view(line).substr(tab + 1));
    builder.AddSupertypeEdge(sub, super);
  }
  return builder.Build();
}

Status WriteOntology(const Ontology& ontology, const LabelDictionary& dict,
                     std::ostream& out) {
  out << kMagic << "\n" << ontology.NumEdges() << "\n";
  for (LabelId t = 0; t < ontology.LabelSlots(); ++t) {
    for (LabelId super : ontology.Supertypes(t)) {
      out << dict.Name(t) << "\t" << dict.Name(super) << "\n";
    }
  }
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

StatusOr<Ontology> LoadOntologyFile(const std::string& path,
                                    LabelDictionary& dict) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ReadOntology(in, dict);
}

Status SaveOntologyFile(const Ontology& ontology, const LabelDictionary& dict,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  return WriteOntology(ontology, dict, out);
}

}  // namespace bigindex
