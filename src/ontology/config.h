// Generalization configurations (Sec. 2) and the Gen / Spec label operations.
//
// A configuration C is a set of mappings ℓ -> ℓ' where ℓ' is a *direct*
// supertype of ℓ in G_Ont. Gen(G, C) rewrites vertex labels simultaneously;
// Spec is the reverse direction and is one-to-many on labels.

#ifndef BIGINDEX_ONTOLOGY_CONFIG_H_
#define BIGINDEX_ONTOLOGY_CONFIG_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "ontology/ontology.h"
#include "util/status.h"

namespace bigindex {

/// One label generalization ℓ -> ℓ'.
struct LabelMapping {
  LabelId from = kInvalidLabel;
  LabelId to = kInvalidLabel;

  bool operator==(const LabelMapping&) const = default;
};

/// A set of simultaneous label generalizations (the paper's C).
///
/// Identity mappings (ℓ -> ℓ) are never stored: Generalize() returns the
/// input unchanged for unmapped labels, which realizes case (ii) of the
/// configuration definition (ℓ = ℓ' when ℓ has no supertype or is untouched).
class GeneralizationConfig {
 public:
  GeneralizationConfig() = default;

  /// Adds ℓ -> ℓ'. Returns InvalidArgument if ℓ is already mapped to a
  /// different target (a configuration is a function on labels).
  Status AddMapping(LabelId from, LabelId to);

  /// Checks Def 2.2 eligibility against the ontology: every target must be a
  /// direct supertype of its source.
  Status Validate(const Ontology& ontology) const;

  /// Gen on a single label.
  LabelId Generalize(LabelId label) const {
    auto it = forward_.find(label);
    return it == forward_.end() ? label : it->second;
  }

  bool Maps(LabelId label) const { return forward_.count(label) > 0; }

  /// Spec on a single label: all labels that C generalizes to `label`.
  /// Does NOT include `label` itself unless ℓ -> ℓ is implied by absence
  /// (callers that need "unchanged" semantics check Maps() first).
  std::span<const LabelId> Preimage(LabelId label) const;

  /// Number of labels generalized to the same target as `label`'s target
  /// (|X_ℓ| in the distortion formula). 0 if `label` is unmapped.
  size_t FamilySize(LabelId label) const;

  const std::vector<LabelMapping>& mappings() const { return mappings_; }
  size_t size() const { return mappings_.size(); }
  bool empty() const { return mappings_.empty(); }

 private:
  void RebuildPreimages() const;

  std::vector<LabelMapping> mappings_;
  std::unordered_map<LabelId, LabelId> forward_;
  // Lazily built reverse index: target -> sources.
  mutable std::unordered_map<LabelId, std::vector<LabelId>> reverse_;
  mutable bool reverse_dirty_ = false;
};

/// Graph generalization Gen(G, C): same structure, labels rewritten.
Graph Generalize(const Graph& g, const GeneralizationConfig& config);

/// Graph specialization Spec(G_C, C): exact inverse of Generalize *only* for
/// graphs whose per-vertex original labels are known; on bare graphs the label
/// preimage is ambiguous, so this variant takes the original labels.
/// Primarily used by tests for the Gen/Spec round-trip property.
StatusOr<Graph> SpecializeWithLabels(const Graph& generalized,
                                     std::span<const LabelId> original_labels);

}  // namespace bigindex

#endif  // BIGINDEX_ONTOLOGY_CONFIG_H_
