#include "ontology/ontology.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace bigindex {

std::span<const LabelId> Ontology::Supertypes(LabelId type) const {
  if (type + 1 >= super_offsets_.size()) return {};
  return {super_targets_.data() + super_offsets_[type],
          super_offsets_[type + 1] - super_offsets_[type]};
}

std::span<const LabelId> Ontology::Subtypes(LabelId type) const {
  if (type + 1 >= sub_offsets_.size()) return {};
  return {sub_targets_.data() + sub_offsets_[type],
          sub_offsets_[type + 1] - sub_offsets_[type]};
}

bool Ontology::IsSupertype(LabelId ancestor, LabelId descendant) const {
  if (ancestor == descendant) return true;
  // Upward BFS from descendant. Ontology chains are short (height ~7 in the
  // paper's data), so this stays tiny.
  std::vector<LabelId> frontier{descendant};
  std::unordered_set<LabelId> seen{descendant};
  while (!frontier.empty()) {
    LabelId t = frontier.back();
    frontier.pop_back();
    for (LabelId super : Supertypes(t)) {
      if (super == ancestor) return true;
      if (seen.insert(super).second) frontier.push_back(super);
    }
  }
  return false;
}

uint32_t Ontology::HeightAbove(LabelId type) const {
  uint32_t best = 0;
  for (LabelId super : Supertypes(type)) {
    best = std::max(best, 1 + HeightAbove(super));
  }
  return best;
}

void OntologyBuilder::AddSupertypeEdge(LabelId subtype, LabelId supertype) {
  edges_.emplace_back(subtype, supertype);
}

StatusOr<Ontology> OntologyBuilder::Build() {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  LabelId max_label = 0;
  for (const auto& [sub, super] : edges_) {
    max_label = std::max({max_label, sub, super});
  }
  const size_t slots = edges_.empty() ? 0 : static_cast<size_t>(max_label) + 1;

  Ontology ont;
  ont.edge_count_ = edges_.size();
  ont.super_offsets_.assign(slots + 1, 0);
  ont.super_targets_.resize(edges_.size());
  for (const auto& [sub, super] : edges_) ont.super_offsets_[sub + 1]++;
  std::partial_sum(ont.super_offsets_.begin(), ont.super_offsets_.end(),
                   ont.super_offsets_.begin());
  {
    std::vector<uint64_t> cursor(ont.super_offsets_.begin(),
                                 ont.super_offsets_.end() - 1);
    for (const auto& [sub, super] : edges_) {
      ont.super_targets_[cursor[sub]++] = super;
    }
  }

  ont.sub_offsets_.assign(slots + 1, 0);
  ont.sub_targets_.resize(edges_.size());
  for (const auto& [sub, super] : edges_) ont.sub_offsets_[super + 1]++;
  std::partial_sum(ont.sub_offsets_.begin(), ont.sub_offsets_.end(),
                   ont.sub_offsets_.begin());
  {
    std::vector<uint64_t> cursor(ont.sub_offsets_.begin(),
                                 ont.sub_offsets_.end() - 1);
    for (const auto& [sub, super] : edges_) {
      ont.sub_targets_[cursor[super]++] = sub;
    }
  }

  // Count distinct types and detect cycles with an iterative Kahn pass over
  // the supertype relation.
  {
    std::unordered_set<LabelId> types;
    for (const auto& [sub, super] : edges_) {
      types.insert(sub);
      types.insert(super);
    }
    ont.num_types_ = types.size();

    std::vector<uint32_t> indegree(slots, 0);  // #subtype-edges into a type
    for (const auto& [sub, super] : edges_) indegree[sub]++;
    std::vector<LabelId> ready;
    for (LabelId t : types) {
      if (indegree[t] == 0) ready.push_back(t);
    }
    size_t visited = 0;
    while (!ready.empty()) {
      LabelId t = ready.back();
      ready.pop_back();
      ++visited;
      for (LabelId sub : ont.Subtypes(t)) {
        if (--indegree[sub] == 0) ready.push_back(sub);
      }
    }
    if (visited != ont.num_types_) {
      return Status::InvalidArgument("ontology has a supertype cycle");
    }
  }

  edges_.clear();
  return ont;
}

}  // namespace bigindex
