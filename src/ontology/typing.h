// Support for general graphs whose labels are not ontology types
// (the paper's Appendix A.2 and its DBpedia treatment, Sec. 6.1.2: "73.2% of
// the entities can be matched to some types in the ontology graph, whereas
// the rest can be simply matched to the topmost type"; footnote 10 points to
// entity-typing tools like PEARL/Patty for the remainder).
//
// AttachUntypedLabels extends an ontology so that every graph label without
// a supertype becomes a direct subtype of a designated fallback type —
// making the full BiG-index machinery applicable to arbitrary labeled
// graphs without modifying the data graph itself.

#ifndef BIGINDEX_ONTOLOGY_TYPING_H_
#define BIGINDEX_ONTOLOGY_TYPING_H_

#include <string_view>

#include "graph/graph.h"
#include "graph/label_dictionary.h"
#include "ontology/ontology.h"
#include "util/status.h"

namespace bigindex {

/// Result of attaching untyped labels.
struct TypingResult {
  Ontology ontology;       // extended ontology
  size_t typed = 0;        // labels that already had a supertype
  size_t attached = 0;     // labels newly attached to the fallback type
  LabelId fallback_type = kInvalidLabel;

  /// Fraction of the graph's distinct labels that were already typed
  /// (the paper reports 73.2% for DBpedia against YAGO's ontology).
  double typed_fraction() const {
    size_t total = typed + attached;
    return total == 0 ? 1.0 : static_cast<double>(typed) / total;
  }
};

/// Rebuilds `ontology` with every distinct label of `g` that lacks a
/// supertype attached under `fallback_name` (interned into `dict`; created
/// as a fresh root type if absent). The input ontology is not modified.
StatusOr<TypingResult> AttachUntypedLabels(const Graph& g,
                                           const Ontology& ontology,
                                           LabelDictionary& dict,
                                           std::string_view fallback_name);

}  // namespace bigindex

#endif  // BIGINDEX_ONTOLOGY_TYPING_H_
