#include "ontology/config.h"

#include <algorithm>
#include <cassert>

namespace bigindex {

Status GeneralizationConfig::AddMapping(LabelId from, LabelId to) {
  if (from == to) return Status::OK();  // identity: implied, never stored
  auto it = forward_.find(from);
  if (it != forward_.end()) {
    if (it->second == to) return Status::OK();
    return Status::InvalidArgument("label already mapped to another target");
  }
  forward_.emplace(from, to);
  mappings_.push_back({from, to});
  reverse_dirty_ = true;
  return Status::OK();
}

Status GeneralizationConfig::Validate(const Ontology& ontology) const {
  for (const auto& m : mappings_) {
    auto supers = ontology.Supertypes(m.from);
    if (!std::binary_search(supers.begin(), supers.end(), m.to)) {
      return Status::InvalidArgument(
          "mapping target is not a direct supertype of its source");
    }
  }
  return Status::OK();
}

void GeneralizationConfig::RebuildPreimages() const {
  reverse_.clear();
  for (const auto& m : mappings_) reverse_[m.to].push_back(m.from);
  for (auto& [to, froms] : reverse_) std::sort(froms.begin(), froms.end());
  reverse_dirty_ = false;
}

std::span<const LabelId> GeneralizationConfig::Preimage(LabelId label) const {
  if (reverse_dirty_) RebuildPreimages();
  auto it = reverse_.find(label);
  if (it == reverse_.end()) return {};
  return it->second;
}

size_t GeneralizationConfig::FamilySize(LabelId label) const {
  auto it = forward_.find(label);
  if (it == forward_.end()) return 0;
  return Preimage(it->second).size();
}

Graph Generalize(const Graph& g, const GeneralizationConfig& config) {
  GraphBuilder builder;
  builder.Reserve(g.NumVertices(), g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    builder.AddVertex(config.Generalize(g.label(v)));
  }
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) builder.AddEdge(u, v);
  }
  auto built = builder.Build();
  assert(built.ok());  // relabeling cannot introduce invalid edges
  return std::move(built).value();
}

StatusOr<Graph> SpecializeWithLabels(
    const Graph& generalized, std::span<const LabelId> original_labels) {
  if (original_labels.size() != generalized.NumVertices()) {
    return Status::InvalidArgument("label count mismatch");
  }
  GraphBuilder builder;
  builder.Reserve(generalized.NumVertices(), generalized.NumEdges());
  for (VertexId v = 0; v < generalized.NumVertices(); ++v) {
    builder.AddVertex(original_labels[v]);
  }
  for (VertexId u = 0; u < generalized.NumVertices(); ++u) {
    for (VertexId v : generalized.OutNeighbors(u)) builder.AddEdge(u, v);
  }
  return builder.Build();
}

}  // namespace bigindex
