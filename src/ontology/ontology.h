// The ontology graph G_Ont of Sec. 2: a DAG over labels (types) whose edges
// (ℓ', ℓ) state that ℓ' is a direct supertype of ℓ.
//
// BiG-index only ever generalizes a label to one of its *direct* supertypes
// per layer (configurations, Sec. 2), so the hot queries here are "direct
// supertypes of ℓ" and the transitive IsSupertype test used by answer
// filtering (Prop 4.1 / Sec. 4.3.1).

#ifndef BIGINDEX_ONTOLOGY_ONTOLOGY_H_
#define BIGINDEX_ONTOLOGY_ONTOLOGY_H_

#include <span>
#include <vector>

#include "graph/types.h"
#include "util/status.h"

namespace bigindex {

class OntologyBuilder;

/// Immutable ontology DAG. Types are LabelIds from the shared dictionary;
/// types never mentioned in any edge simply have no supertypes/subtypes.
class Ontology {
 public:
  Ontology() = default;

  /// Direct supertypes of `type`, sorted ascending. Empty if none known.
  std::span<const LabelId> Supertypes(LabelId type) const;

  /// Direct subtypes of `type`, sorted ascending. Empty if none known.
  std::span<const LabelId> Subtypes(LabelId type) const;

  bool HasSupertype(LabelId type) const { return !Supertypes(type).empty(); }

  /// True iff `ancestor` is reachable from `descendant` following supertype
  /// edges (reflexive: a type is a supertype of itself for filtering
  /// purposes, matching the use in Prop 4.1).
  bool IsSupertype(LabelId ancestor, LabelId descendant) const;

  /// Length of the longest supertype chain starting at `type` (0 for roots).
  uint32_t HeightAbove(LabelId type) const;

  /// Number of supertype edges.
  size_t NumEdges() const { return edge_count_; }

  /// Number of types that appear in at least one edge.
  size_t NumTypes() const { return num_types_; }

  /// |V_Ont| + |E_Ont|.
  size_t Size() const { return NumTypes() + NumEdges(); }

  /// Greatest label id with ontology data, +1 (the adjacency table span).
  size_t LabelSlots() const {
    return super_offsets_.empty() ? 0 : super_offsets_.size() - 1;
  }

 private:
  friend class OntologyBuilder;

  std::vector<uint64_t> super_offsets_;  // CSR over label ids
  std::vector<LabelId> super_targets_;
  std::vector<uint64_t> sub_offsets_;
  std::vector<LabelId> sub_targets_;
  size_t edge_count_ = 0;
  size_t num_types_ = 0;
};

/// Accumulates SubTypeOf edges and validates acyclicity at Build() time.
class OntologyBuilder {
 public:
  /// Declares that `supertype` is a direct supertype of `subtype`
  /// (i.e., edge (supertype, subtype) of E_Ont).
  void AddSupertypeEdge(LabelId subtype, LabelId supertype);

  /// Produces the Ontology; fails with InvalidArgument if the supertype
  /// relation has a cycle (G_Ont must be a DAG, Sec. 2).
  StatusOr<Ontology> Build();

 private:
  std::vector<std::pair<LabelId, LabelId>> edges_;  // (subtype, supertype)
};

}  // namespace bigindex

#endif  // BIGINDEX_ONTOLOGY_ONTOLOGY_H_
