#include "ontology/typing.h"

namespace bigindex {

StatusOr<TypingResult> AttachUntypedLabels(const Graph& g,
                                           const Ontology& ontology,
                                           LabelDictionary& dict,
                                           std::string_view fallback_name) {
  TypingResult result;
  result.fallback_type = dict.Intern(fallback_name);

  OntologyBuilder builder;
  // Copy the existing supertype edges.
  for (LabelId t = 0; t < ontology.LabelSlots(); ++t) {
    for (LabelId super : ontology.Supertypes(t)) {
      builder.AddSupertypeEdge(t, super);
    }
  }
  // Attach every untyped graph label under the fallback.
  for (LabelId l : g.DistinctLabels()) {
    if (ontology.HasSupertype(l)) {
      ++result.typed;
      continue;
    }
    if (l == result.fallback_type) continue;  // don't self-attach
    builder.AddSupertypeEdge(l, result.fallback_type);
    ++result.attached;
  }

  auto built = builder.Build();
  if (!built.ok()) return built.status();
  result.ontology = std::move(built).value();
  return result;
}

}  // namespace bigindex
