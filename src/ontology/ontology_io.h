// Text serialization of ontology graphs.
//
// Format:
//
//   bigindex-ontology v1
//   <num_edges>
//   <subtype-label> TAB <supertype-label>     x num_edges

#ifndef BIGINDEX_ONTOLOGY_ONTOLOGY_IO_H_
#define BIGINDEX_ONTOLOGY_ONTOLOGY_IO_H_

#include <iosfwd>
#include <string>

#include "graph/label_dictionary.h"
#include "ontology/ontology.h"
#include "util/status.h"

namespace bigindex {

/// Parses an ontology from `in`, interning labels into `dict`.
StatusOr<Ontology> ReadOntology(std::istream& in, LabelDictionary& dict);

/// Writes `ontology` to `out`.
Status WriteOntology(const Ontology& ontology, const LabelDictionary& dict,
                     std::ostream& out);

StatusOr<Ontology> LoadOntologyFile(const std::string& path,
                                    LabelDictionary& dict);
Status SaveOntologyFile(const Ontology& ontology, const LabelDictionary& dict,
                        const std::string& path);

}  // namespace bigindex

#endif  // BIGINDEX_ONTOLOGY_ONTOLOGY_IO_H_
