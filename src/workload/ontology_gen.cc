#include "workload/ontology_gen.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/random.h"

namespace bigindex {

GeneratedOntology GenerateOntology(LabelDictionary& dict,
                                   const OntologyGenOptions& options) {
  GeneratedOntology out;
  Rng rng(options.seed);
  OntologyBuilder builder;

  size_t counter = 0;
  auto make_type = [&](uint32_t depth) {
    std::string name = options.name_prefix + std::to_string(depth) + "_" +
                       std::to_string(counter++);
    LabelId id = dict.Intern(name);
    out.all_types.push_back(id);
    return id;
  };

  // Level-by-level construction. Widths grow geometrically from num_roots
  // toward the leaf budget (or by `branching` when no budget binds), so
  // sibling families stay non-trivial at *every* level — each generalization
  // step then actually merges labels, as in real taxonomies.
  double growth = options.branching;
  if (options.max_leaf_types != 0 && options.height > 0) {
    double target_growth =
        std::pow(static_cast<double>(options.max_leaf_types) /
                     static_cast<double>(options.num_roots),
                 1.0 / options.height);
    growth = std::min(growth, target_growth);
  }

  std::vector<LabelId> level;
  for (size_t r = 0; r < options.num_roots; ++r) level.push_back(make_type(0));
  double width = static_cast<double>(options.num_roots);
  for (uint32_t depth = 1; depth <= options.height; ++depth) {
    width *= growth;
    size_t want = std::max(level.size(), static_cast<size_t>(width));
    if (options.max_leaf_types != 0) {
      want = std::max(level.size(), std::min(want, options.max_leaf_types));
    }
    std::vector<LabelId> next;
    next.reserve(want);
    for (size_t i = 0; i < want; ++i) {
      LabelId child = make_type(depth);
      // Near-round-robin parent pick keeps subtree sizes balanced-ish.
      LabelId parent = level[(i + rng.Uniform(2)) % level.size()];
      builder.AddSupertypeEdge(child, parent);
      next.push_back(child);
    }
    level = std::move(next);
  }
  out.leaf_types = level;

  auto built = builder.Build();
  assert(built.ok());  // trees are acyclic by construction
  out.ontology = std::move(built).value();
  return out;
}

}  // namespace bigindex
