// Dataset registry — deterministic stand-ins for the paper's evaluation
// datasets (Table 2), scaled by a user-chosen factor so benches run on a
// laptop. Shapes (|E|/|V| ratio, label skew, structural regularity, ontology
// geometry) are tuned per dataset to steer the same trends the paper reports:
// yago3 compresses hardest (Tab 3: 0.28), dbpedia least (0.61), imdb has the
// dense neighborhoods that make r-clique's index infeasible, and the synt-*
// series compresses mildly (0.76–0.88).

#ifndef BIGINDEX_WORKLOAD_DATASETS_H_
#define BIGINDEX_WORKLOAD_DATASETS_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/label_dictionary.h"
#include "util/status.h"
#include "workload/graph_gen.h"
#include "workload/ontology_gen.h"

namespace bigindex {

/// A generated dataset: dictionary + ontology + data graph. The struct owns
/// everything a BigIndex built on it borrows, so keep it alive.
struct Dataset {
  std::string name;
  std::unique_ptr<LabelDictionary> dict;
  GeneratedOntology ontology;
  Graph graph;

  /// Reference statistics from the paper's Table 2 (unscaled originals).
  size_t paper_vertices = 0;
  size_t paper_edges = 0;
};

/// Names accepted by MakeDataset: "yago3", "dbpedia", "imdb", and
/// "synt-1m" … "synt-8m".
std::vector<std::string> DatasetNames();

/// Builds the named dataset at `scale` (1.0 = paper-size; the benches
/// default to ~0.02 so yago3 lands near 50k vertices). Unknown names fail
/// with NotFound.
StatusOr<Dataset> MakeDataset(const std::string& name, double scale);

}  // namespace bigindex

#endif  // BIGINDEX_WORKLOAD_DATASETS_H_
