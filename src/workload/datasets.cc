#include "workload/datasets.h"

#include <algorithm>

namespace bigindex {
namespace {

struct DatasetSpec {
  const char* name;
  size_t paper_vertices;
  size_t paper_edges;
  OntologyGenOptions ont;
  GraphGenOptions graph;
};

// Per-dataset tuning (see header). Paper sizes from Table 2.
const DatasetSpec kSpecs[] = {
    {
        .name = "yago3",
        .paper_vertices = 2'635'317,
        .paper_edges = 5'260'573,
        // Real taxonomy: deep and broad.
        .ont = {.height = 7,
                .branching = 5.0,
                .num_roots = 3,
                .max_leaf_types = 600,
                .name_prefix = "yago_T",
                .seed = 101},
        // Highly regular entity-attribute structure -> strongest
        // compression (Tab 3 ratio 0.28).
        .graph = {.sink_fraction = 0.45,
                  .label_zipf = 1.1,
                  .min_slots = 1,
                  .max_slots = 3,
                  .noise_fraction = 0.17,
                  .hub_zipf = 0.6,
                  .seed = 201},
    },
    {
        .name = "dbpedia",
        .paper_vertices = 5'795'123,
        .paper_edges = 15'752'299,
        // DBpedia borrows YAGO's ontology (Sec. 6.1.2), but only ~73% of
        // entities match types well -> noisier structure, weakest
        // compression (0.61).
        .ont = {.height = 7,
                .branching = 5.0,
                .num_roots = 3,
                .max_leaf_types = 900,
                .name_prefix = "dbp_T",
                .seed = 102},
        .graph = {.sink_fraction = 0.30,
                  .label_zipf = 0.8,
                  .min_slots = 1,
                  .max_slots = 4,
                  .noise_fraction = 0.34,
                  .hub_zipf = 0.6,
                  .seed = 202},
    },
    {
        .name = "imdb",
        .paper_vertices = 1'673'076,
        .paper_edges = 6'074'782,
        // Movie graph: moderate regularity (0.37) but very dense
        // neighborhoods (avg m̄ ~ 105K in the paper) -> high hub skew +
        // higher edge ratio.
        .ont = {.height = 7,
                .branching = 5.0,
                .num_roots = 3,
                .max_leaf_types = 500,
                .name_prefix = "imdb_T",
                .seed = 103},
        .graph = {.sink_fraction = 0.40,
                  .label_zipf = 1.0,
                  .min_slots = 1,
                  .max_slots = 3,
                  .noise_fraction = 0.22,
                  .hub_zipf = 1.2,
                  .seed = 203},
    },
    // Synthetic series (Table 2): small ontologies (5k types), mild
    // structure -> compression only to ~0.76-0.88 (Tab 3).
    {
        .name = "synt-1m",
        .paper_vertices = 1'000'000,
        .paper_edges = 3'000'000,
        .ont = {.height = 4,
                .branching = 5.0,
                .num_roots = 5,
                .max_leaf_types = 800,
                .name_prefix = "synt_T",
                .seed = 104},
        .graph = {.sink_fraction = 0.25,
                  .label_zipf = 0.5,
                  .min_slots = 1,
                  .max_slots = 3,
                  .noise_fraction = 0.65,
                  .hub_zipf = 0.6,
                  .seed = 204},
    },
    {
        .name = "synt-2m",
        .paper_vertices = 2'000'000,
        .paper_edges = 6'000'000,
        .ont = {.height = 4,
                .branching = 5.0,
                .num_roots = 5,
                .max_leaf_types = 800,
                .name_prefix = "synt_T",
                .seed = 104},
        .graph = {.sink_fraction = 0.25,
                  .label_zipf = 0.5,
                  .min_slots = 1,
                  .max_slots = 3,
                  .noise_fraction = 0.65,
                  .hub_zipf = 0.6,
                  .seed = 205},
    },
    {
        .name = "synt-4m",
        .paper_vertices = 4'000'000,
        .paper_edges = 8'000'000,
        .ont = {.height = 4,
                .branching = 5.0,
                .num_roots = 5,
                .max_leaf_types = 800,
                .name_prefix = "synt_T",
                .seed = 104},
        .graph = {.sink_fraction = 0.25,
                  .label_zipf = 0.5,
                  .min_slots = 1,
                  .max_slots = 3,
                  .noise_fraction = 0.55,
                  .hub_zipf = 0.6,
                  .seed = 206},
    },
    {
        .name = "synt-8m",
        .paper_vertices = 8'000'000,
        .paper_edges = 16'000'000,
        .ont = {.height = 4,
                .branching = 5.0,
                .num_roots = 5,
                .max_leaf_types = 800,
                .name_prefix = "synt_T",
                .seed = 104},
        .graph = {.sink_fraction = 0.25,
                  .label_zipf = 0.5,
                  .min_slots = 1,
                  .max_slots = 3,
                  .noise_fraction = 0.55,
                  .hub_zipf = 0.6,
                  .seed = 207},
    },
};

}  // namespace

std::vector<std::string> DatasetNames() {
  std::vector<std::string> names;
  for (const DatasetSpec& spec : kSpecs) names.emplace_back(spec.name);
  return names;
}

StatusOr<Dataset> MakeDataset(const std::string& name, double scale) {
  const DatasetSpec* spec = nullptr;
  for (const DatasetSpec& s : kSpecs) {
    if (name == s.name) {
      spec = &s;
      break;
    }
  }
  if (spec == nullptr) return Status::NotFound("unknown dataset: " + name);
  if (scale <= 0) return Status::InvalidArgument("scale must be positive");

  Dataset ds;
  ds.name = name;
  ds.paper_vertices = spec->paper_vertices;
  ds.paper_edges = spec->paper_edges;
  ds.dict = std::make_unique<LabelDictionary>();
  ds.ontology = GenerateOntology(*ds.dict, spec->ont);

  GraphGenOptions graph_options = spec->graph;
  graph_options.num_vertices = std::max<size_t>(
      100, static_cast<size_t>(spec->paper_vertices * scale));
  graph_options.num_edges = std::max<size_t>(
      200, static_cast<size_t>(spec->paper_edges * scale));
  ds.graph = GenerateKnowledgeGraph(ds.ontology, graph_options);
  return ds;
}

}  // namespace bigindex
