#include "workload/graph_gen.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "util/random.h"

namespace bigindex {
namespace {

/// A relation slot of an entity type: every entity of that type points at
/// one sink drawn from `family` (sinks labeled with any type in the family).
struct RelationSlot {
  // Sinks eligible for this slot, hot-first (Zipf over the vector order).
  std::vector<VertexId> targets;
};

}  // namespace

Graph GenerateKnowledgeGraph(const GeneratedOntology& ontology,
                             const GraphGenOptions& options) {
  assert(!ontology.leaf_types.empty());
  Rng rng(options.seed);
  const size_t n = options.num_vertices;
  const size_t num_types = ontology.leaf_types.size();

  // Seed-shuffled leaf types so which type is "hot" varies with the seed.
  std::vector<LabelId> types(ontology.leaf_types);
  for (size_t i = types.size(); i > 1; --i) {
    std::swap(types[i - 1], types[rng.Uniform(i)]);
  }
  ZipfSampler type_dist(num_types, options.label_zipf);

  // Split the type space: the first portion labels sinks, the rest entities.
  const size_t num_sink_types = std::max<size_t>(1, num_types / 3);
  const size_t num_sinks =
      std::max<size_t>(1, static_cast<size_t>(n * options.sink_fraction));

  // Group sink types into *families of ontology siblings*: a slot draws
  // concrete sinks across one whole family, so before generalization the
  // targets carry different leaf labels (blocks differ -> entities do not
  // merge), and after one generalization step the family collapses to its
  // parent label (sinks merge -> entire entity populations become
  // bisimilar). This is what makes generalization, not plain bisimulation,
  // the source of compression — the paper's Fig. 3 -> Fig. 4 step.
  std::unordered_map<LabelId, std::vector<size_t>> family_of_parent;
  for (size_t t = 0; t < num_sink_types; ++t) {
    auto supers = ontology.ontology.Supertypes(types[t]);
    LabelId parent = supers.empty() ? types[t] : supers.front();
    family_of_parent[parent].push_back(t);
  }
  std::vector<std::vector<size_t>> families;
  {
    // Deterministic family order: by smallest member type index.
    std::vector<std::pair<size_t, std::vector<size_t>>> ordered;
    for (auto& [parent, members] : family_of_parent) {
      std::sort(members.begin(), members.end());
      ordered.emplace_back(members.front(), std::move(members));
    }
    std::sort(ordered.begin(), ordered.end());
    for (auto& [key, members] : ordered) families.push_back(std::move(members));
  }

  GraphBuilder builder;
  builder.Reserve(n, options.num_edges);

  // Sinks first: labels from the sink-type range, Zipf-skewed.
  std::vector<std::vector<VertexId>> sinks_of_type(num_sink_types);
  for (size_t i = 0; i < num_sinks; ++i) {
    size_t t = type_dist.Sample(rng) % num_sink_types;
    VertexId v = builder.AddVertex(types[t]);
    sinks_of_type[t].push_back(v);
  }

  // Entities: labels from the entity-type range.
  const size_t num_entity_types = num_types - num_sink_types;
  std::vector<std::vector<VertexId>> entities_of_type(num_entity_types);
  for (size_t i = num_sinks; i < n; ++i) {
    size_t t = type_dist.Sample(rng) % num_entity_types;
    VertexId v = builder.AddVertex(types[num_sink_types + t]);
    entities_of_type[t].push_back(v);
  }

  // Relation slots per entity type: each slot targets one sink-type family.
  std::vector<std::vector<size_t>> slots_of_type(num_entity_types);
  for (size_t t = 0; t < num_entity_types; ++t) {
    size_t k = rng.UniformRange(options.min_slots, options.max_slots);
    for (size_t j = 0; j < k; ++j) {
      slots_of_type[t].push_back(rng.Uniform(families.size()));
    }
  }

  // Slot edges: every entity fires each of its type's slots once, drawing a
  // concrete sink Zipf-hot within the slot's pool.
  const size_t noise_edges = static_cast<size_t>(
      static_cast<double>(options.num_edges) * options.noise_fraction);
  const size_t slot_budget =
      options.num_edges > noise_edges ? options.num_edges - noise_edges : 0;

  size_t made = 0;
  std::unordered_map<size_t, ZipfSampler> sink_pick;  // per sink type
  auto pick_sink_of_type = [&](size_t sink_type) -> VertexId {
    const auto& pool = sinks_of_type[sink_type];
    if (pool.empty()) return kInvalidVertex;
    auto it = sink_pick.find(sink_type);
    if (it == sink_pick.end()) {
      it = sink_pick.emplace(sink_type,
                             ZipfSampler(pool.size(), options.hub_zipf))
               .first;
    }
    return pool[it->second.Sample(rng)];
  };
  auto pick_sink = [&](size_t family) -> VertexId {
    const auto& members = families[family];
    // Uniform leaf type within the family, Zipf-hot concrete sink within
    // the type's pool; retry a few times for empty pools.
    for (int attempt = 0; attempt < 4; ++attempt) {
      VertexId v =
          pick_sink_of_type(members[rng.Uniform(members.size())]);
      if (v != kInvalidVertex) return v;
    }
    return kInvalidVertex;
  };

  for (size_t round = 0; made < slot_budget; ++round) {
    bool progressed = false;
    for (size_t t = 0; t < num_entity_types && made < slot_budget; ++t) {
      const auto& pool = entities_of_type[t];
      if (pool.empty()) continue;
      for (VertexId e : pool) {
        if (made >= slot_budget) break;
        // Round r fires slot r of this type (entities revisit their slots
        // if the edge budget exceeds one pass).
        const auto& slots = slots_of_type[t];
        size_t slot = slots[round % slots.size()];
        VertexId s = pick_sink(slot);
        if (s == kInvalidVertex) continue;
        builder.AddEdge(e, s);
        ++made;
        progressed = true;
      }
    }
    if (!progressed) break;  // no eligible entity/sink combination at all
  }

  // Noise: preferential-attachment edges *from entities* (attribute sinks
  // never gain out-edges — polluting sinks would cascade splits through
  // every entity pointing at them, which real attribute nodes do not do).
  ZipfSampler noise_target(n, options.hub_zipf);
  size_t attempts = 0;
  const size_t num_entities = n - num_sinks;
  while (made < options.num_edges && num_entities > 0 &&
         attempts < options.num_edges * 4) {
    ++attempts;
    VertexId u =
        static_cast<VertexId>(num_sinks + rng.Uniform(num_entities));
    VertexId v = static_cast<VertexId>(noise_target.Sample(rng));
    if (u == v) continue;
    builder.AddEdge(u, v);
    ++made;
  }

  auto built = builder.Build();
  assert(built.ok());
  return std::move(built).value();
}

}  // namespace bigindex
