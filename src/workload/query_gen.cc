#include "workload/query_gen.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "graph/traversal.h"
#include "util/random.h"

namespace bigindex {

std::vector<QuerySpec> GenerateQueryWorkload(const Dataset& dataset,
                                             const QueryGenOptions& options) {
  const Graph& g = dataset.graph;
  std::vector<QuerySpec> workload;
  if (g.NumVertices() == 0) return workload;

  Rng rng(options.seed);
  BfsScratch scratch;
  size_t qid = 1;
  for (size_t size : options.sizes) {
    size_t floor = options.min_count;
    QuerySpec spec;
    for (size_t attempt = 0;; ++attempt) {
      if (attempt >= options.max_attempts) {
        // Relax the floor rather than fail: scaled-down graphs may not have
        // `size` distinct frequent labels co-located.
        if (floor > 1) {
          floor /= 2;
          attempt = 0;
        } else {
          break;  // give up on this query size
        }
      }
      VertexId seed_vertex = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
      // Collect labels around the seed in both directions (answers connect
      // keywords through paths of either orientation).
      std::unordered_set<LabelId> nearby;
      for (auto [v, d] : scratch.BoundedDistances(g, seed_vertex,
                                                  options.radius,
                                                  Direction::kForward)) {
        nearby.insert(g.label(v));
      }
      for (auto [v, d] : scratch.BoundedDistances(g, seed_vertex,
                                                  options.radius,
                                                  Direction::kBackward)) {
        nearby.insert(g.label(v));
      }
      std::vector<LabelId> frequent;
      for (LabelId l : nearby) {
        if (g.LabelCount(l) >= floor) frequent.push_back(l);
      }
      if (frequent.size() < size) continue;
      std::sort(frequent.begin(), frequent.end());
      // Deterministic random subset of the frequent nearby labels.
      for (size_t i = frequent.size(); i > 1; --i) {
        std::swap(frequent[i - 1], frequent[rng.Uniform(i)]);
      }
      spec.keywords.assign(frequent.begin(), frequent.begin() + size);
      for (LabelId l : spec.keywords) spec.counts.push_back(g.LabelCount(l));
      break;
    }
    if (spec.keywords.empty()) continue;
    spec.id = "Q" + std::to_string(qid++);
    workload.push_back(std::move(spec));
  }
  return workload;
}

std::string WorkloadToString(const Dataset& dataset,
                             const std::vector<QuerySpec>& workload) {
  std::ostringstream out;
  for (const QuerySpec& q : workload) {
    out << q.id << ": (";
    for (size_t i = 0; i < q.keywords.size(); ++i) {
      if (i) out << ", ";
      out << dataset.dict->Name(q.keywords[i]);
    }
    out << ")  counts=(";
    for (size_t i = 0; i < q.counts.size(); ++i) {
      if (i) out << ", ";
      out << q.counts[i];
    }
    out << ")\n";
  }
  return out.str();
}

}  // namespace bigindex
