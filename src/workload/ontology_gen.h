// Synthetic ontology generation (Sec. 6.1.2): the paper's synthetic
// ontologies have "an average degree of 5 and a height of 7 ... consistent
// with the heights and average degrees of the real ontology graphs".
//
// We generate a forest of type trees top-down: each type spawns a randomized
// number of subtypes (mean = branching) until the height budget or the leaf
// target is reached. Leaf types label graph vertices; interior types exist
// only in the ontology (generalization targets).

#ifndef BIGINDEX_WORKLOAD_ONTOLOGY_GEN_H_
#define BIGINDEX_WORKLOAD_ONTOLOGY_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/label_dictionary.h"
#include "ontology/ontology.h"

namespace bigindex {

/// Knobs for the ontology generator.
struct OntologyGenOptions {
  /// Levels below the roots (paper: 7).
  uint32_t height = 7;

  /// Mean number of subtypes per type (paper: 5).
  double branching = 5.0;

  /// Number of root types ("Thing"-level).
  size_t num_roots = 3;

  /// Stop spawning once this many leaf types exist (caps ontology size;
  /// 0 = no cap).
  size_t max_leaf_types = 2000;

  /// Name prefix for generated types (avoids collisions when several
  /// ontologies share a dictionary).
  std::string name_prefix = "T";

  uint64_t seed = 1;
};

/// A generated ontology plus the type inventory the graph generator needs.
struct GeneratedOntology {
  Ontology ontology;
  std::vector<LabelId> leaf_types;  // types graph vertices draw labels from
  std::vector<LabelId> all_types;
};

/// Generates the forest described above. Deterministic given options.seed.
GeneratedOntology GenerateOntology(LabelDictionary& dict,
                                   const OntologyGenOptions& options);

}  // namespace bigindex

#endif  // BIGINDEX_WORKLOAD_ONTOLOGY_GEN_H_
