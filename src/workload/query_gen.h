// Keyword query workload generation (Sec. 6.1.3, Table 4).
//
// The paper selects 2–6 keywords "from the ontology graph which had semantic
// relationships" with per-keyword counts above a floor. We realize that by
// seeding a random vertex and collecting frequent labels from its hop
// neighborhood — co-located labels are semantically related and guarantee
// the query has answers.

#ifndef BIGINDEX_WORKLOAD_QUERY_GEN_H_
#define BIGINDEX_WORKLOAD_QUERY_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "workload/datasets.h"

namespace bigindex {

/// One benchmark query (a Table 4 row).
struct QuerySpec {
  std::string id;                  // "Q1" …
  std::vector<LabelId> keywords;   // labels to search
  std::vector<size_t> counts;      // per-keyword vertex counts in the graph
};

/// Workload knobs.
struct QueryGenOptions {
  /// Keyword counts per query, Table 4 style (|Q| between 2 and 6).
  std::vector<size_t> sizes = {2, 2, 3, 3, 3, 4, 5, 6};

  /// Minimum per-keyword vertex count (the paper used > 3000 on the full
  /// graphs; scaled graphs use a scaled floor).
  size_t min_count = 20;

  /// Neighborhood radius for relatedness.
  uint32_t radius = 3;

  uint64_t seed = 99;

  /// Attempts per query before relaxing min_count.
  size_t max_attempts = 200;
};

/// Generates one workload for `dataset`. Deterministic given options.seed.
std::vector<QuerySpec> GenerateQueryWorkload(const Dataset& dataset,
                                             const QueryGenOptions& options);

/// Renders a workload like Table 4 (id, keyword names, counts).
std::string WorkloadToString(const Dataset& dataset,
                             const std::vector<QuerySpec>& workload);

}  // namespace bigindex

#endif  // BIGINDEX_WORKLOAD_QUERY_GEN_H_
