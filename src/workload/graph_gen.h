// Synthetic knowledge-graph generation — the offline substitute for YAGO3 /
// DBpedia / IMDB (see DESIGN.md, Substitutions).
//
// The generator mirrors the structure that makes BiG-index work on real
// knowledge graphs (the Fig. 1 -> Fig. 3 -> Fig. 4 story):
//
//   * a share of the vertices are *attribute sinks* (years, places, awards —
//     out-degree 0). Sinks with the same label are bisimilar immediately;
//     sinks with *sibling* labels merge after one generalization step;
//   * *entity* vertices (persons, films) carry Zipf-skewed leaf-type labels
//     and point at sinks through per-type "relation slots": every entity of
//     type T draws the same slot target families (e.g., every Player points
//     at some Club-ish sink and some Country-ish sink). Before
//     generalization their concrete targets differ; after it, the slot
//     families collapse and whole entity populations become bisimilar —
//     exactly how the paper's 100 persons become one supernode;
//   * `noise_fraction` of the edges are preferential-attachment noise that
//     degrades regularity (DBpedia-style), and the hub skew controls the
//     dense neighborhoods that blow up r-clique on IMDB.

#ifndef BIGINDEX_WORKLOAD_GRAPH_GEN_H_
#define BIGINDEX_WORKLOAD_GRAPH_GEN_H_

#include <cstdint>

#include "graph/graph.h"
#include "workload/ontology_gen.h"

namespace bigindex {

/// Knobs for the knowledge-graph generator.
struct GraphGenOptions {
  size_t num_vertices = 10000;
  size_t num_edges = 30000;

  /// Fraction of vertices that are attribute sinks.
  double sink_fraction = 0.4;

  /// Zipf exponent of leaf-type frequencies for entities and sinks.
  double label_zipf = 1.0;

  /// Relation slots per entity type (each slot = one target type family).
  size_t min_slots = 1;
  size_t max_slots = 3;

  /// Fraction of edges that are random entity-to-entity noise instead of
  /// slot edges (lower = more regular = more compressible).
  double noise_fraction = 0.2;

  /// Zipf exponent for concrete sink choice within a slot family
  /// (higher = hotter sinks = denser neighborhoods).
  double hub_zipf = 0.6;

  uint64_t seed = 7;
};

/// Generates the graph. Deterministic given options.seed and the ontology.
Graph GenerateKnowledgeGraph(const GeneratedOntology& ontology,
                             const GraphGenOptions& options);

}  // namespace bigindex

#endif  // BIGINDEX_WORKLOAD_GRAPH_GEN_H_
