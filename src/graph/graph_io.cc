#include "graph/graph_io.h"

#include <fstream>
#include <sstream>
#include <string>

namespace bigindex {
namespace {

constexpr char kMagic[] = "bigindex-graph v1";

// Reads the next line that is neither empty nor a '#' comment.
bool NextRecord(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

StatusOr<Graph> ReadGraph(std::istream& in, LabelDictionary& dict) {
  std::string line;
  if (!NextRecord(in, line) || line != kMagic) {
    return Status::Corruption("missing graph header");
  }
  if (!NextRecord(in, line)) return Status::Corruption("missing size line");
  std::istringstream sizes(line);
  uint64_t n = 0, m = 0;
  if (!(sizes >> n >> m)) return Status::Corruption("bad size line");

  GraphBuilder builder;
  builder.Reserve(n, m);
  for (uint64_t i = 0; i < n; ++i) {
    if (!NextRecord(in, line)) {
      return Status::Corruption("truncated vertex section");
    }
    builder.AddVertex(dict.Intern(line));
  }
  for (uint64_t i = 0; i < m; ++i) {
    if (!NextRecord(in, line)) {
      return Status::Corruption("truncated edge section");
    }
    std::istringstream edge(line);
    uint64_t u = 0, v = 0;
    if (!(edge >> u >> v) || u >= n || v >= n) {
      return Status::Corruption("bad edge line: " + line);
    }
    builder.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  return builder.Build();
}

Status WriteGraph(const Graph& g, const LabelDictionary& dict,
                  std::ostream& out) {
  out << kMagic << "\n" << g.NumVertices() << " " << g.NumEdges() << "\n";
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    out << dict.Name(g.label(v)) << "\n";
  }
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) out << u << " " << v << "\n";
  }
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

StatusOr<Graph> LoadGraphFile(const std::string& path,
                              LabelDictionary& dict) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ReadGraph(in, dict);
}

Status SaveGraphFile(const Graph& g, const LabelDictionary& dict,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  return WriteGraph(g, dict, out);
}

}  // namespace bigindex
