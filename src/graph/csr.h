// Flat CSR primitives: the arena that backs every Graph / BisimMapping and
// the HalfInterval accessor the hot paths scan with.
//
// Motivation (ROADMAP item 2): every per-vertex structure in the system is a
// pair of contiguous arrays — offsets[] (|V|+1 u64) and payload[] — and every
// hot loop is a linear scan over offsets[v] .. offsets[v+1]. Storing those
// arrays as independently heap-allocated std::vectors makes an index
// expensive to serialize (field-by-field rebuild) and impossible to map from
// disk. Instead, one Arena allocation (or one mmap'd file region) holds all
// arrays back to back, 8-byte aligned, and the owning structures hold
// read-only spans into it plus a shared keep-alive. A structure built by a
// builder and a structure viewing an index image are then the same type with
// the same accessors — zero-copy load falls out.
//
// CsrView/HalfInterval follow the fgidx::DenseIndex idiom (SNIPPETS.md §2):
// operator[] hands back the half-open [begin, end) range of a vertex's slots
// so inner loops index one flat payload array instead of materializing a
// span per vertex.

#ifndef BIGINDEX_GRAPH_CSR_H_
#define BIGINDEX_GRAPH_CSR_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

#include "graph/types.h"

namespace bigindex {

/// A half-open slot range [begin, end) into a CSR payload array.
struct HalfInterval {
  uint64_t begin = 0;
  uint64_t end = 0;

  uint64_t size() const { return end - begin; }
  bool empty() const { return begin == end; }
};

/// Read-only view of one CSR adjacency: offsets (size |V|+1) over a flat
/// payload array. Cheap to copy; hoist it out of loops so the two base
/// pointers live in registers across the scan.
class CsrView {
 public:
  CsrView() = default;
  CsrView(const uint64_t* offsets, const VertexId* payload)
      : offsets_(offsets), payload_(payload) {}

  /// Slot range of vertex v, the fgidx half-interval accessor.
  HalfInterval operator[](VertexId v) const {
    return {offsets_[v], offsets_[v + 1]};
  }

  /// Payload at slot i (a neighbor / member vertex id).
  VertexId Slot(uint64_t i) const { return payload_[i]; }

  uint64_t Degree(VertexId v) const { return offsets_[v + 1] - offsets_[v]; }

  /// The payload of `iv` as a span (for std algorithms over one range).
  std::span<const VertexId> Slice(HalfInterval iv) const {
    return {payload_ + iv.begin, iv.size()};
  }

  const VertexId* payload() const { return payload_; }

 private:
  const uint64_t* offsets_ = nullptr;
  const VertexId* payload_ = nullptr;
};

/// One contiguous allocation that the flat structures carve their arrays out
/// of. Carve() hands out 8-byte-aligned typed spans front to back; the arena
/// is sized up front (AlignedSize per array, summed) so carving never
/// reallocates and the resulting layout matches the index-image section
/// layout byte for byte.
class Arena {
 public:
  static constexpr size_t kAlign = 8;

  /// Bytes `count` elements of T occupy in an arena (or an image section),
  /// including tail padding to the 8-byte boundary.
  template <typename T>
  static size_t AlignedSize(size_t count) {
    return (count * sizeof(T) + (kAlign - 1)) & ~(kAlign - 1);
  }

  explicit Arena(size_t bytes)
      : data_(bytes == 0 ? nullptr : new std::byte[bytes]()), size_(bytes) {}

  /// Allots `count` elements of T. The caller must have sized the arena to
  /// cover every carve (checked by assert).
  template <typename T>
  std::span<T> Carve(size_t count) {
    static_assert(alignof(T) <= kAlign, "arena carves at 8-byte alignment");
    size_t bytes = AlignedSize<T>(count);
    assert(used_ + bytes <= size_ && "arena undersized");
    T* out = reinterpret_cast<T*>(data_.get() + used_);
    used_ += bytes;
    return {out, count};
  }

  size_t size() const { return size_; }

 private:
  std::unique_ptr<std::byte[]> data_;
  size_t size_ = 0;
  size_t used_ = 0;
};

/// Shared ownership of whatever memory a flat structure views: an Arena from
/// a builder, an mmap'd file, or a caller-owned buffer.
using StorageHandle = std::shared_ptr<const void>;

}  // namespace bigindex

#endif  // BIGINDEX_GRAPH_CSR_H_
