#include "graph/sampling.h"

#include <cassert>
#include <cmath>
#include <unordered_map>

#include "engine/executor.h"
#include "graph/traversal.h"
#include "obs/trace.h"

namespace bigindex {

SampledSubgraph SampleRadiusSubgraph(const Graph& g, uint32_t radius,
                                     Rng& rng, size_t max_vertices) {
  SampledSubgraph sample;
  if (g.NumVertices() == 0) return sample;

  VertexId seed = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
  BfsScratch scratch;
  auto reached =
      scratch.BoundedDistances(g, seed, radius, Direction::kForward);
  if (max_vertices != 0 && reached.size() > max_vertices) {
    reached.resize(max_vertices);  // BFS order: keeps the closest vertices
  }

  std::unordered_map<VertexId, VertexId> to_local;
  to_local.reserve(reached.size());
  GraphBuilder builder;
  builder.Reserve(reached.size(), reached.size() * 2);
  for (const auto& [v, dist] : reached) {
    to_local.emplace(v, builder.AddVertex(g.label(v)));
    sample.original.push_back(v);
  }
  // Node-induced: keep every edge among the sampled vertex set.
  for (const auto& [v, dist] : reached) {
    VertexId lv = to_local.at(v);
    for (VertexId w : g.OutNeighbors(v)) {
      auto it = to_local.find(w);
      if (it != to_local.end()) builder.AddEdge(lv, it->second);
    }
  }
  auto built = builder.Build();
  assert(built.ok());
  sample.graph = std::move(built).value();
  return sample;
}

std::vector<SampledSubgraph> SampleRadiusSubgraphs(const Graph& g,
                                                   uint32_t radius,
                                                   size_t count, Rng& rng,
                                                   size_t max_vertices) {
  std::vector<SampledSubgraph> samples;
  samples.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    samples.push_back(SampleRadiusSubgraph(g, radius, rng, max_vertices));
  }
  return samples;
}

uint64_t DeriveSampleSeed(uint64_t master_seed, uint64_t index) {
  // SplitMix64 finalizer over the (seed, stream) pair; Rng applies its own
  // mixing on top, so correlated inputs do not yield correlated streams.
  uint64_t z = master_seed + 0x9E3779B97f4A7C15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::vector<SampledSubgraph> SampleRadiusSubgraphs(
    const Graph& g, uint32_t radius, size_t count, uint64_t master_seed,
    size_t max_vertices, ExecutorPool* pool) {
  std::vector<SampledSubgraph> samples(count);
  auto draw = [&](size_t, size_t i) {
    Rng rng(DeriveSampleSeed(master_seed, i));
    samples[i] = SampleRadiusSubgraph(g, radius, rng, max_vertices);
  };
  if (pool != nullptr && pool->num_workers() > 1 && count > 1) {
    TRACE_SPAN("build/parallel/samples");
    pool->ParallelFor(count, draw);
  } else {
    for (size_t i = 0; i < count; ++i) draw(0, i);
  }
  return samples;
}

size_t SampleSizeForError(double z, double error) {
  assert(error > 0);
  double n = 0.25 * (z / error) * (z / error);
  return static_cast<size_t>(std::ceil(n));
}

}  // namespace bigindex
