#include "graph/sampling.h"

#include <cassert>
#include <cmath>
#include <unordered_map>

#include "graph/traversal.h"

namespace bigindex {

SampledSubgraph SampleRadiusSubgraph(const Graph& g, uint32_t radius,
                                     Rng& rng, size_t max_vertices) {
  SampledSubgraph sample;
  if (g.NumVertices() == 0) return sample;

  VertexId seed = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
  BfsScratch scratch;
  auto reached =
      scratch.BoundedDistances(g, seed, radius, Direction::kForward);
  if (max_vertices != 0 && reached.size() > max_vertices) {
    reached.resize(max_vertices);  // BFS order: keeps the closest vertices
  }

  std::unordered_map<VertexId, VertexId> to_local;
  to_local.reserve(reached.size());
  GraphBuilder builder;
  builder.Reserve(reached.size(), reached.size() * 2);
  for (const auto& [v, dist] : reached) {
    to_local.emplace(v, builder.AddVertex(g.label(v)));
    sample.original.push_back(v);
  }
  // Node-induced: keep every edge among the sampled vertex set.
  for (const auto& [v, dist] : reached) {
    VertexId lv = to_local.at(v);
    for (VertexId w : g.OutNeighbors(v)) {
      auto it = to_local.find(w);
      if (it != to_local.end()) builder.AddEdge(lv, it->second);
    }
  }
  auto built = builder.Build();
  assert(built.ok());
  sample.graph = std::move(built).value();
  return sample;
}

std::vector<SampledSubgraph> SampleRadiusSubgraphs(const Graph& g,
                                                   uint32_t radius,
                                                   size_t count, Rng& rng,
                                                   size_t max_vertices) {
  std::vector<SampledSubgraph> samples;
  samples.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    samples.push_back(SampleRadiusSubgraph(g, radius, rng, max_vertices));
  }
  return samples;
}

size_t SampleSizeForError(double z, double error) {
  assert(error > 0);
  double n = 0.25 * (z / error) * (z / error);
  return static_cast<size_t>(std::ceil(n));
}

}  // namespace bigindex
