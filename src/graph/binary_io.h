// Binary serialization of graphs, label dictionaries, and ontologies.
//
// The text formats (graph_io.h / ontology_io.h) are debuggable but slow for
// multi-million-edge graphs; this little-endian binary format loads an order
// of magnitude faster and round-trips exactly. Layout (format version 2):
//
//   magic "BIGX" | u32 version | u32 endianness marker (0x01020304)
//   u64 num_labels
//   per label: u32 byte-length + bytes             (dictionary, id order)
//   u64 num_vertices | u64 num_edges
//   u32 label id per vertex
//   (u32 src, u32 dst) per edge
//
// The ontology format uses magic "BIGO" with the same version/endianness
// header, the same dictionary block, then u64 num_edges and
// (u32 subtype, u32 supertype) pairs.
//
// The endianness marker is written as a native u32; a reader on a machine of
// the other byte order sees 0x04030201 and rejects the file with a clear
// error instead of deserializing garbage. Version-1 files (no marker) are
// rejected with an explicit "re-serialize" message. All fallible reads
// return Corruption with a position hint.

#ifndef BIGINDEX_GRAPH_BINARY_IO_H_
#define BIGINDEX_GRAPH_BINARY_IO_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"
#include "graph/label_dictionary.h"
#include "ontology/ontology.h"
#include "util/status.h"

namespace bigindex {

/// Writes dictionary + graph to `out` in the binary format.
Status WriteGraphBinary(const Graph& g, const LabelDictionary& dict,
                        std::ostream& out);

/// Reads a binary graph, interning its labels into `dict`.
StatusOr<Graph> ReadGraphBinary(std::istream& in, LabelDictionary& dict);

Status SaveGraphBinaryFile(const Graph& g, const LabelDictionary& dict,
                           const std::string& path);
StatusOr<Graph> LoadGraphBinaryFile(const std::string& path,
                                    LabelDictionary& dict);

/// Writes dictionary + ontology DAG to `out` in the binary format.
Status WriteOntologyBinary(const Ontology& ontology,
                           const LabelDictionary& dict, std::ostream& out);

/// Reads a binary ontology, interning its labels into `dict`.
StatusOr<Ontology> ReadOntologyBinary(std::istream& in, LabelDictionary& dict);

}  // namespace bigindex

#endif  // BIGINDEX_GRAPH_BINARY_IO_H_
