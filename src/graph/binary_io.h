// Binary serialization of graphs and label dictionaries.
//
// The text formats (graph_io.h / ontology_io.h) are debuggable but slow for
// multi-million-edge graphs; this little-endian binary format loads an order
// of magnitude faster and round-trips exactly. Layout:
//
//   magic "BIGX" | u32 version | u64 num_labels
//   per label: u32 byte-length + bytes             (dictionary, id order)
//   u64 num_vertices | u64 num_edges
//   u32 label id per vertex
//   (u32 src, u32 dst) per edge
//
// All fallible reads return Corruption with a position hint.

#ifndef BIGINDEX_GRAPH_BINARY_IO_H_
#define BIGINDEX_GRAPH_BINARY_IO_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"
#include "graph/label_dictionary.h"
#include "util/status.h"

namespace bigindex {

/// Writes dictionary + graph to `out` in the binary format.
Status WriteGraphBinary(const Graph& g, const LabelDictionary& dict,
                        std::ostream& out);

/// Reads a binary graph, interning its labels into `dict`.
StatusOr<Graph> ReadGraphBinary(std::istream& in, LabelDictionary& dict);

Status SaveGraphBinaryFile(const Graph& g, const LabelDictionary& dict,
                           const std::string& path);
StatusOr<Graph> LoadGraphBinaryFile(const std::string& path,
                                    LabelDictionary& dict);

}  // namespace bigindex

#endif  // BIGINDEX_GRAPH_BINARY_IO_H_
