// Breadth-first traversal utilities shared by the search semantics and the
// cost model: bounded single-source distances, point-to-point distance, and
// hop-bounded reachability.

#ifndef BIGINDEX_GRAPH_TRAVERSAL_H_
#define BIGINDEX_GRAPH_TRAVERSAL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace bigindex {

/// Edge orientation for traversals. kForward follows u -> v; kBackward walks
/// edges in reverse (v's in-neighbors), as the backward expansions of
/// bkws/Blinks do.
enum class Direction { kForward, kBackward };

/// Reusable BFS workspace. Holding one per thread/query avoids reallocating
/// the visited array on every traversal of a large graph.
class BfsScratch {
 public:
  /// Single-source BFS from `source` up to `max_dist` hops; returns
  /// (vertex, distance) pairs, source included at distance 0, in BFS order.
  std::vector<std::pair<VertexId, uint32_t>> BoundedDistances(
      const Graph& g, VertexId source, uint32_t max_dist, Direction dir);

  /// Multi-source variant: all listed sources start at distance 0.
  std::vector<std::pair<VertexId, uint32_t>> BoundedDistancesMulti(
      const Graph& g, const std::vector<VertexId>& sources, uint32_t max_dist,
      Direction dir);

 private:
  void EnsureSize(size_t n);

  std::vector<uint32_t> visit_stamp_;
  uint32_t stamp_ = 0;
  std::vector<VertexId> queue_;
};

/// Shortest directed distance from u to v, capped at `max_dist` hops; returns
/// kInfDistance if v is unreachable within the cap.
uint32_t ShortestDistance(const Graph& g, VertexId u, VertexId v,
                          uint32_t max_dist);

/// True iff v is reachable from u within `max_dist` hops (forward edges).
bool ReachableWithin(const Graph& g, VertexId u, VertexId v,
                     uint32_t max_dist);

}  // namespace bigindex

#endif  // BIGINDEX_GRAPH_TRAVERSAL_H_
