#include "graph/graph.h"

#include <algorithm>
#include <numeric>

namespace bigindex {

bool Graph::HasEdge(VertexId u, VertexId v) const {
  auto nbrs = OutNeighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::span<const VertexId> Graph::VerticesWithLabel(LabelId label) const {
  if (label + 1 >= label_offsets_.size()) return {};
  return {label_vertices_.data() + label_offsets_[label],
          label_offsets_[label + 1] - label_offsets_[label]};
}

std::vector<std::pair<VertexId, VertexId>> Graph::Edges() const {
  std::vector<std::pair<VertexId, VertexId>> result;
  result.reserve(NumEdges());
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (VertexId v : OutNeighbors(u)) result.emplace_back(u, v);
  }
  return result;
}

void GraphBuilder::Reserve(size_t vertices, size_t edges) {
  labels_.reserve(vertices);
  edges_.reserve(edges);
}

VertexId GraphBuilder::AddVertex(LabelId label) {
  VertexId id = static_cast<VertexId>(labels_.size());
  labels_.push_back(label);
  return id;
}

void GraphBuilder::AddEdge(VertexId u, VertexId v) {
  edges_.emplace_back(u, v);
}

StatusOr<Graph> GraphBuilder::Build() {
  const size_t n = labels_.size();
  for (const auto& [u, v] : edges_) {
    if (u >= n || v >= n) {
      return Status::InvalidArgument("edge references out-of-range vertex");
    }
  }

  // Collapse duplicate edges.
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  const size_t m = edges_.size();

  Graph g;
  g.labels_ = std::move(labels_);

  // Out-adjacency: edges_ is already sorted by (source, target).
  g.out_offsets_.assign(n + 1, 0);
  g.out_targets_.resize(m);
  for (const auto& [u, v] : edges_) g.out_offsets_[u + 1]++;
  std::partial_sum(g.out_offsets_.begin(), g.out_offsets_.end(),
                   g.out_offsets_.begin());
  for (size_t i = 0; i < m; ++i) g.out_targets_[i] = edges_[i].second;

  // In-adjacency via counting sort by target.
  g.in_offsets_.assign(n + 1, 0);
  g.in_sources_.resize(m);
  for (const auto& [u, v] : edges_) g.in_offsets_[v + 1]++;
  std::partial_sum(g.in_offsets_.begin(), g.in_offsets_.end(),
                   g.in_offsets_.begin());
  {
    std::vector<uint64_t> cursor(g.in_offsets_.begin(),
                                 g.in_offsets_.end() - 1);
    for (const auto& [u, v] : edges_) g.in_sources_[cursor[v]++] = u;
  }
  // Sources arrive in ascending order already (edges_ sorted by source), so
  // each in-neighbor list is sorted.

  // Inverted label index.
  LabelId max_label = 0;
  for (LabelId l : g.labels_) max_label = std::max(max_label, l);
  const size_t num_label_slots = n == 0 ? 0 : static_cast<size_t>(max_label) + 1;
  g.label_offsets_.assign(num_label_slots + 1, 0);
  g.label_vertices_.resize(n);
  for (LabelId l : g.labels_) g.label_offsets_[l + 1]++;
  std::partial_sum(g.label_offsets_.begin(), g.label_offsets_.end(),
                   g.label_offsets_.begin());
  {
    std::vector<uint64_t> cursor(g.label_offsets_.begin(),
                                 g.label_offsets_.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      g.label_vertices_[cursor[g.labels_[v]]++] = v;
    }
  }
  for (size_t l = 0; l < num_label_slots; ++l) {
    if (g.label_offsets_[l + 1] > g.label_offsets_[l]) {
      g.distinct_labels_.push_back(static_cast<LabelId>(l));
    }
  }

  edges_.clear();
  return g;
}

}  // namespace bigindex
