#include "graph/graph.h"

#include <algorithm>
#include <numeric>

namespace bigindex {

namespace {
// A default-constructed Graph (0 vertices) views this shared |V|+1 = 1
// offsets array so the accessors need no emptiness branches.
constexpr uint64_t kZeroOffsets[1] = {0};
}  // namespace

std::span<const uint64_t> Graph::EmptyOffsets() { return {kZeroOffsets, 1}; }

bool Graph::HasEdge(VertexId u, VertexId v) const {
  auto nbrs = OutNeighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::span<const VertexId> Graph::VerticesWithLabel(LabelId label) const {
  if (label + 1 >= label_offsets_.size()) return {};
  return {label_vertices_.data() + label_offsets_[label],
          label_offsets_[label + 1] - label_offsets_[label]};
}

std::vector<std::pair<VertexId, VertexId>> Graph::Edges() const {
  std::vector<std::pair<VertexId, VertexId>> result;
  result.reserve(NumEdges());
  const CsrView out = Out();
  for (VertexId u = 0; u < NumVertices(); ++u) {
    const auto [begin, end] = out[u];
    for (uint64_t i = begin; i < end; ++i) result.emplace_back(u, out.Slot(i));
  }
  return result;
}

Graph Graph::FromStorage(StorageHandle storage,
                         std::span<const LabelId> labels,
                         std::span<const uint64_t> out_offsets,
                         std::span<const VertexId> out_targets,
                         std::span<const uint64_t> in_offsets,
                         std::span<const VertexId> in_sources,
                         std::span<const uint64_t> label_offsets,
                         std::span<const VertexId> label_vertices,
                         std::span<const LabelId> distinct_labels) {
  Graph g;
  g.storage_ = std::move(storage);
  g.labels_ = labels;
  g.out_offsets_ = out_offsets;
  g.out_targets_ = out_targets;
  g.in_offsets_ = in_offsets;
  g.in_sources_ = in_sources;
  g.label_offsets_ = label_offsets;
  g.label_vertices_ = label_vertices;
  g.distinct_labels_ = distinct_labels;
  return g;
}

void GraphBuilder::Reserve(size_t vertices, size_t edges) {
  labels_.reserve(vertices);
  edges_.reserve(edges);
}

VertexId GraphBuilder::AddVertex(LabelId label) {
  VertexId id = static_cast<VertexId>(labels_.size());
  labels_.push_back(label);
  return id;
}

void GraphBuilder::AddEdge(VertexId u, VertexId v) {
  edges_.emplace_back(u, v);
}

StatusOr<Graph> GraphBuilder::Build() {
  const size_t n = labels_.size();
  for (const auto& [u, v] : edges_) {
    if (u >= n || v >= n) {
      return Status::InvalidArgument("edge references out-of-range vertex");
    }
  }

  // Collapse duplicate edges.
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  const size_t m = edges_.size();

  // Pre-compute the label histogram so every array size (and therefore the
  // single arena allocation) is known before any array is written.
  LabelId max_label = 0;
  for (LabelId l : labels_) max_label = std::max(max_label, l);
  const size_t slots = n == 0 ? 0 : static_cast<size_t>(max_label) + 1;
  std::vector<uint64_t> label_count(slots, 0);
  for (LabelId l : labels_) label_count[l]++;
  size_t num_distinct = 0;
  for (uint64_t c : label_count) num_distinct += c > 0 ? 1 : 0;

  const size_t total = Arena::AlignedSize<LabelId>(n) +          // labels
                       Arena::AlignedSize<uint64_t>(n + 1) +     // out_offsets
                       Arena::AlignedSize<VertexId>(m) +         // out_targets
                       Arena::AlignedSize<uint64_t>(n + 1) +     // in_offsets
                       Arena::AlignedSize<VertexId>(m) +         // in_sources
                       Arena::AlignedSize<uint64_t>(slots + 1) + // label_offs
                       Arena::AlignedSize<VertexId>(n) +         // label_verts
                       Arena::AlignedSize<LabelId>(num_distinct);
  auto arena = std::make_shared<Arena>(total);

  // Carve in canonical order (the same order index-image sections use).
  std::span<LabelId> labels = arena->Carve<LabelId>(n);
  std::span<uint64_t> out_offsets = arena->Carve<uint64_t>(n + 1);
  std::span<VertexId> out_targets = arena->Carve<VertexId>(m);
  std::span<uint64_t> in_offsets = arena->Carve<uint64_t>(n + 1);
  std::span<VertexId> in_sources = arena->Carve<VertexId>(m);
  std::span<uint64_t> label_offsets = arena->Carve<uint64_t>(slots + 1);
  std::span<VertexId> label_vertices = arena->Carve<VertexId>(n);
  std::span<LabelId> distinct_labels = arena->Carve<LabelId>(num_distinct);

  std::copy(labels_.begin(), labels_.end(), labels.begin());

  // Out-adjacency: edges_ is already sorted by (source, target).
  std::fill(out_offsets.begin(), out_offsets.end(), 0);
  for (const auto& [u, v] : edges_) out_offsets[u + 1]++;
  std::partial_sum(out_offsets.begin(), out_offsets.end(),
                   out_offsets.begin());
  for (size_t i = 0; i < m; ++i) out_targets[i] = edges_[i].second;

  // In-adjacency via counting sort by target.
  std::fill(in_offsets.begin(), in_offsets.end(), 0);
  for (const auto& [u, v] : edges_) in_offsets[v + 1]++;
  std::partial_sum(in_offsets.begin(), in_offsets.end(), in_offsets.begin());
  {
    std::vector<uint64_t> cursor(in_offsets.begin(), in_offsets.end() - 1);
    for (const auto& [u, v] : edges_) in_sources[cursor[v]++] = u;
  }
  // Sources arrive in ascending order already (edges_ sorted by source), so
  // each in-neighbor list is sorted.

  // Inverted label index from the histogram.
  label_offsets[0] = 0;
  std::partial_sum(label_count.begin(), label_count.end(),
                   label_offsets.begin() + 1);
  {
    std::vector<uint64_t> cursor(label_offsets.begin(),
                                 label_offsets.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      label_vertices[cursor[labels[v]]++] = v;
    }
  }
  {
    size_t d = 0;
    for (size_t l = 0; l < slots; ++l) {
      if (label_count[l] > 0) distinct_labels[d++] = static_cast<LabelId>(l);
    }
  }

  labels_.clear();
  edges_.clear();
  return Graph::FromStorage(std::move(arena), labels, out_offsets,
                            out_targets, in_offsets, in_sources, label_offsets,
                            label_vertices, distinct_labels);
}

}  // namespace bigindex
