// Text serialization of graphs.
//
// Format (line-oriented, '#' comments allowed between records):
//
//   bigindex-graph v1
//   <num_vertices> <num_edges>
//   <label string>          x num_vertices   (vertex i = i-th label line)
//   <src> <dst>              x num_edges
//
// Labels are interned into the caller-supplied LabelDictionary so graphs and
// ontologies loaded together share label ids.

#ifndef BIGINDEX_GRAPH_GRAPH_IO_H_
#define BIGINDEX_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"
#include "graph/label_dictionary.h"
#include "util/status.h"

namespace bigindex {

/// Parses a graph from `in`. Fails with Corruption on malformed input.
StatusOr<Graph> ReadGraph(std::istream& in, LabelDictionary& dict);

/// Writes `g` to `out` in the format above.
Status WriteGraph(const Graph& g, const LabelDictionary& dict,
                  std::ostream& out);

/// File convenience wrappers.
StatusOr<Graph> LoadGraphFile(const std::string& path, LabelDictionary& dict);
Status SaveGraphFile(const Graph& g, const LabelDictionary& dict,
                     const std::string& path);

}  // namespace bigindex

#endif  // BIGINDEX_GRAPH_GRAPH_IO_H_
