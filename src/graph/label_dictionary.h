// String interning for vertex labels / ontology types.
//
// All graphs and the ontology of one dataset share a single LabelDictionary so
// a LabelId means the same thing at every layer of a BiG-index.

#ifndef BIGINDEX_GRAPH_LABEL_DICTIONARY_H_
#define BIGINDEX_GRAPH_LABEL_DICTIONARY_H_

#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "graph/types.h"

namespace bigindex {

/// Bidirectional mapping between label strings and dense LabelIds.
///
/// Intern() is idempotent; Find() never allocates. Ids are assigned in
/// insertion order starting at 0, so they are stable across identical
/// insertion sequences (the generators rely on this for determinism).
class LabelDictionary {
 public:
  LabelDictionary() = default;

  /// Returns the id of `name`, inserting it if new.
  LabelId Intern(std::string_view name);

  /// Returns the id of `name`, or kInvalidLabel if not present.
  LabelId Find(std::string_view name) const;

  /// Returns the string for `id`. id must be < size().
  const std::string& Name(LabelId id) const;

  bool Contains(std::string_view name) const {
    return Find(name) != kInvalidLabel;
  }

  size_t size() const { return names_.size(); }

 private:
  // Deque so stored strings never move; index_ holds views into them.
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, LabelId> index_;
};

}  // namespace bigindex

#endif  // BIGINDEX_GRAPH_LABEL_DICTIONARY_H_
