#include "graph/label_dictionary.h"

#include <cassert>

namespace bigindex {

LabelId LabelDictionary::Intern(std::string_view name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  LabelId id = static_cast<LabelId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(std::string_view(names_.back()), id);
  return id;
}

LabelId LabelDictionary::Find(std::string_view name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kInvalidLabel : it->second;
}

const std::string& LabelDictionary::Name(LabelId id) const {
  assert(id < names_.size());
  return names_[id];
}

}  // namespace bigindex
