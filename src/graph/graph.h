// The directed labeled graph of Sec. 2 of the paper: G = (V, E, L, Σ).
//
// Graph is an immutable flat-CSR structure with both out- and in-adjacency
// plus an inverted label index (label -> vertices), which every keyword
// search semantics needs to seed its keyword vertex sets V_q. All arrays
// live back to back in one Arena (or one mmap'd index-image section — see
// core/index_image.h), so a Graph is a handful of spans plus a shared
// keep-alive: copies are shallow, serialization is a flat memcpy, and
// loading from an image is zero-copy. Build instances through GraphBuilder.

#ifndef BIGINDEX_GRAPH_GRAPH_H_
#define BIGINDEX_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"
#include "util/status.h"

namespace bigindex {

class GraphBuilder;

/// Immutable directed vertex-labeled graph in flat CSR form.
///
/// |G| = |V| + |E| is the paper's graph-size measure (Sec. 2); Size() returns
/// it. Parallel edges are collapsed and self-loops kept (bisimulation and the
/// search semantics are well-defined with them).
class Graph {
 public:
  Graph() = default;

  size_t NumVertices() const { return labels_.size(); }
  size_t NumEdges() const { return out_targets_.size(); }
  /// |V| + |E|, the paper's |G|.
  size_t Size() const { return NumVertices() + NumEdges(); }

  LabelId label(VertexId v) const { return labels_[v]; }
  std::span<const LabelId> labels() const { return labels_; }

  /// Out-adjacency as a HalfInterval view — the hot-loop accessor. Hoist the
  /// view out of the scan: `const CsrView out = g.Out();` then
  /// `auto [b, e] = out[v]; for (uint64_t i = b; i < e; ++i) out.Slot(i)`.
  CsrView Out() const { return {out_offsets_.data(), out_targets_.data()}; }

  /// In-adjacency view (sources of edges u -> v).
  CsrView In() const { return {in_offsets_.data(), in_sources_.data()}; }

  /// Out-neighbors of v (targets of edges v -> w), sorted ascending.
  std::span<const VertexId> OutNeighbors(VertexId v) const {
    return {out_targets_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }

  /// In-neighbors of v (sources of edges u -> v), sorted ascending.
  std::span<const VertexId> InNeighbors(VertexId v) const {
    return {in_sources_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }

  size_t OutDegree(VertexId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  size_t InDegree(VertexId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }
  /// Total degree, used for the joint-vertex test of Sec. 4.3.3.
  size_t Degree(VertexId v) const { return OutDegree(v) + InDegree(v); }

  /// True iff edge (u, v) exists. O(log OutDegree(u)).
  bool HasEdge(VertexId u, VertexId v) const;

  /// All vertices whose label is `label`, sorted ascending; empty if none.
  std::span<const VertexId> VerticesWithLabel(LabelId label) const;

  /// Number of vertices carrying `label` (|V_ℓ| in the cost model).
  size_t LabelCount(LabelId label) const {
    return VerticesWithLabel(label).size();
  }

  /// Distinct labels that occur in the graph (the graph's Σ), sorted.
  std::span<const LabelId> DistinctLabels() const { return distinct_labels_; }

  /// Label-index slot count: greatest occurring label id + 1 (0 when empty).
  size_t LabelSlots() const { return label_offsets_.size() - 1; }

  /// Support of a label: |V_ℓ| / |V| (Sec. 3.2). Zero if absent or empty.
  double LabelSupport(LabelId label) const {
    return NumVertices() == 0
               ? 0.0
               : static_cast<double>(LabelCount(label)) / NumVertices();
  }

  /// All edges as (source, target) pairs, in CSR order. For tests and I/O.
  std::vector<std::pair<VertexId, VertexId>> Edges() const;

  /// The raw flat arrays, in canonical (index-image) order. For serializers.
  std::span<const uint64_t> OutOffsets() const { return out_offsets_; }
  std::span<const uint64_t> InOffsets() const { return in_offsets_; }
  std::span<const VertexId> OutTargets() const { return out_targets_; }
  std::span<const VertexId> InSources() const { return in_sources_; }
  std::span<const uint64_t> LabelOffsets() const { return label_offsets_; }
  std::span<const VertexId> LabelVertices() const { return label_vertices_; }

  /// The shared keep-alive of the backing arrays (arena or mmap'd image
  /// section); null for a default-constructed Graph. Caches of per-graph
  /// derived structures use it as an identity token that, unlike the Graph's
  /// address, cannot be recycled while the entry is alive (see
  /// search/per_graph_cache.h).
  const StorageHandle& storage() const { return storage_; }

  /// Wires a Graph directly over externally owned arrays (the mmap'd index
  /// image). `storage` keeps the backing memory alive for the Graph's
  /// lifetime. The caller (core/index_image) is responsible for having
  /// validated array sizes and invariants — this performs no checks.
  static Graph FromStorage(StorageHandle storage,
                           std::span<const LabelId> labels,
                           std::span<const uint64_t> out_offsets,
                           std::span<const VertexId> out_targets,
                           std::span<const uint64_t> in_offsets,
                           std::span<const VertexId> in_sources,
                           std::span<const uint64_t> label_offsets,
                           std::span<const VertexId> label_vertices,
                           std::span<const LabelId> distinct_labels);

 private:
  friend class GraphBuilder;

  // All spans point into `storage_` (one arena / image section). A
  // default-constructed Graph views the static empty layout below.
  StorageHandle storage_;
  std::span<const LabelId> labels_;
  std::span<const uint64_t> out_offsets_ = EmptyOffsets();  // size |V|+1
  std::span<const VertexId> out_targets_;
  std::span<const uint64_t> in_offsets_ = EmptyOffsets();  // size |V|+1
  std::span<const VertexId> in_sources_;

  // Inverted label index: vertices grouped by label, CSR over label ids.
  std::span<const uint64_t> label_offsets_ = EmptyOffsets();
  std::span<const VertexId> label_vertices_;
  std::span<const LabelId> distinct_labels_;

  static std::span<const uint64_t> EmptyOffsets();
};

/// Accumulates vertices and edges, then produces an immutable Graph.
///
/// Vertices are identified by their insertion order. Edges referencing
/// out-of-range vertices make Build() fail with InvalidArgument; duplicate
/// edges are silently collapsed.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Pre-sizes internal buffers (optional).
  void Reserve(size_t vertices, size_t edges);

  /// Adds a vertex with the given label and returns its id.
  VertexId AddVertex(LabelId label);

  /// Adds the directed edge u -> v.
  void AddEdge(VertexId u, VertexId v);

  size_t NumVertices() const { return labels_.size(); }

  /// Consumes the builder's contents and produces the Graph.
  StatusOr<Graph> Build();

 private:
  std::vector<LabelId> labels_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
};

}  // namespace bigindex

#endif  // BIGINDEX_GRAPH_GRAPH_H_
