// The directed labeled graph of Sec. 2 of the paper: G = (V, E, L, Σ).
//
// Graph is an immutable CSR structure with both out- and in-adjacency plus an
// inverted label index (label -> vertices), which every keyword search
// semantics needs to seed its keyword vertex sets V_q. Build instances through
// GraphBuilder.

#ifndef BIGINDEX_GRAPH_GRAPH_H_
#define BIGINDEX_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/types.h"
#include "util/status.h"

namespace bigindex {

class GraphBuilder;

/// Immutable directed vertex-labeled graph in CSR form.
///
/// |G| = |V| + |E| is the paper's graph-size measure (Sec. 2); Size() returns
/// it. Parallel edges are collapsed and self-loops kept (bisimulation and the
/// search semantics are well-defined with them).
class Graph {
 public:
  Graph() = default;

  size_t NumVertices() const { return labels_.size(); }
  size_t NumEdges() const { return out_targets_.size(); }
  /// |V| + |E|, the paper's |G|.
  size_t Size() const { return NumVertices() + NumEdges(); }

  LabelId label(VertexId v) const { return labels_[v]; }
  std::span<const LabelId> labels() const { return labels_; }

  /// Out-neighbors of v (targets of edges v -> w), sorted ascending.
  std::span<const VertexId> OutNeighbors(VertexId v) const {
    return {out_targets_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }

  /// In-neighbors of v (sources of edges u -> v), sorted ascending.
  std::span<const VertexId> InNeighbors(VertexId v) const {
    return {in_sources_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }

  size_t OutDegree(VertexId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  size_t InDegree(VertexId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }
  /// Total degree, used for the joint-vertex test of Sec. 4.3.3.
  size_t Degree(VertexId v) const { return OutDegree(v) + InDegree(v); }

  /// True iff edge (u, v) exists. O(log OutDegree(u)).
  bool HasEdge(VertexId u, VertexId v) const;

  /// All vertices whose label is `label`, sorted ascending; empty if none.
  std::span<const VertexId> VerticesWithLabel(LabelId label) const;

  /// Number of vertices carrying `label` (|V_ℓ| in the cost model).
  size_t LabelCount(LabelId label) const {
    return VerticesWithLabel(label).size();
  }

  /// Distinct labels that occur in the graph (the graph's Σ), sorted.
  std::span<const LabelId> DistinctLabels() const { return distinct_labels_; }

  /// Support of a label: |V_ℓ| / |V| (Sec. 3.2). Zero if absent or empty.
  double LabelSupport(LabelId label) const {
    return NumVertices() == 0
               ? 0.0
               : static_cast<double>(LabelCount(label)) / NumVertices();
  }

  /// All edges as (source, target) pairs, in CSR order. For tests and I/O.
  std::vector<std::pair<VertexId, VertexId>> Edges() const;

 private:
  friend class GraphBuilder;

  std::vector<LabelId> labels_;
  std::vector<uint64_t> out_offsets_;  // size |V|+1
  std::vector<VertexId> out_targets_;
  std::vector<uint64_t> in_offsets_;  // size |V|+1
  std::vector<VertexId> in_sources_;

  // Inverted label index: vertices grouped by label, CSR over label ids.
  std::vector<uint64_t> label_offsets_;  // size max_label+2
  std::vector<VertexId> label_vertices_;
  std::vector<LabelId> distinct_labels_;
};

/// Accumulates vertices and edges, then produces an immutable Graph.
///
/// Vertices are identified by their insertion order. Edges referencing
/// out-of-range vertices make Build() fail with InvalidArgument; duplicate
/// edges are silently collapsed.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Pre-sizes internal buffers (optional).
  void Reserve(size_t vertices, size_t edges);

  /// Adds a vertex with the given label and returns its id.
  VertexId AddVertex(LabelId label);

  /// Adds the directed edge u -> v.
  void AddEdge(VertexId u, VertexId v);

  size_t NumVertices() const { return labels_.size(); }

  /// Consumes the builder's contents and produces the Graph.
  StatusOr<Graph> Build();

 private:
  std::vector<LabelId> labels_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
};

}  // namespace bigindex

#endif  // BIGINDEX_GRAPH_GRAPH_H_
