#include "graph/traversal.h"

#include <algorithm>
#include <limits>

namespace bigindex {

void BfsScratch::EnsureSize(size_t n) {
  if (visit_stamp_.size() < n) visit_stamp_.assign(n, 0);
  if (stamp_ == std::numeric_limits<uint32_t>::max()) {
    std::fill(visit_stamp_.begin(), visit_stamp_.end(), 0);
    stamp_ = 0;
  }
  ++stamp_;
}

std::vector<std::pair<VertexId, uint32_t>> BfsScratch::BoundedDistances(
    const Graph& g, VertexId source, uint32_t max_dist, Direction dir) {
  return BoundedDistancesMulti(g, {source}, max_dist, dir);
}

std::vector<std::pair<VertexId, uint32_t>> BfsScratch::BoundedDistancesMulti(
    const Graph& g, const std::vector<VertexId>& sources, uint32_t max_dist,
    Direction dir) {
  EnsureSize(g.NumVertices());
  std::vector<std::pair<VertexId, uint32_t>> result;
  queue_.clear();
  for (VertexId s : sources) {
    if (visit_stamp_[s] == stamp_) continue;
    visit_stamp_[s] = stamp_;
    queue_.push_back(s);
    result.emplace_back(s, 0);
  }
  // result[i].second is the distance of queue_[i]; the two arrays stay
  // parallel throughout, so popping an index gives us its level directly.
  size_t head = 0;
  const CsrView adj = dir == Direction::kForward ? g.Out() : g.In();
  while (head < queue_.size()) {
    VertexId u = queue_[head];
    uint32_t d = result[head].second;
    ++head;
    if (d >= max_dist) break;  // BFS order: all later entries are >= d.
    const auto [begin, end] = adj[u];
    for (uint64_t i = begin; i < end; ++i) {
      VertexId w = adj.Slot(i);
      if (visit_stamp_[w] == stamp_) continue;
      visit_stamp_[w] = stamp_;
      queue_.push_back(w);
      result.emplace_back(w, d + 1);
    }
  }
  return result;
}

uint32_t ShortestDistance(const Graph& g, VertexId u, VertexId v,
                          uint32_t max_dist) {
  if (u == v) return 0;
  // Plain forward BFS with early exit; bidirectional search would also work
  // but the bounded depth keeps frontiers small in practice.
  std::vector<uint32_t> dist(g.NumVertices(), kInfDistance);
  std::vector<VertexId> queue;
  dist[u] = 0;
  queue.push_back(u);
  size_t head = 0;
  const CsrView out = g.Out();
  while (head < queue.size()) {
    VertexId x = queue[head++];
    if (dist[x] >= max_dist) break;
    const auto [begin, end] = out[x];
    for (uint64_t i = begin; i < end; ++i) {
      VertexId w = out.Slot(i);
      if (dist[w] != kInfDistance) continue;
      dist[w] = dist[x] + 1;
      if (w == v) return dist[w];
      queue.push_back(w);
    }
  }
  return kInfDistance;
}

bool ReachableWithin(const Graph& g, VertexId u, VertexId v,
                     uint32_t max_dist) {
  return ShortestDistance(g, u, v, max_dist) != kInfDistance;
}

}  // namespace bigindex
