// Node-induced subgraph sampling (Sec. 3.2, "Graph sampling").
//
// The cost model estimates the compression ratio of a configuration on small
// samples instead of the whole graph: pick a random vertex v, take every
// vertex reachable from v within r hops, and induce the subgraph on that set.

#ifndef BIGINDEX_GRAPH_SAMPLING_H_
#define BIGINDEX_GRAPH_SAMPLING_H_

#include <vector>

#include "graph/graph.h"
#include "util/random.h"

namespace bigindex {

class ExecutorPool;

/// One sampled node-induced subgraph plus the identity of its vertices in the
/// parent graph (original[i] is the parent vertex of sample vertex i).
struct SampledSubgraph {
  Graph graph;
  std::vector<VertexId> original;
};

/// Samples the node-induced subgraph of the vertices reachable from a random
/// seed within `radius` hops. Deterministic given the rng state.
/// `max_vertices` truncates the BFS (hub-heavy graphs can reach most of the
/// graph in 2 hops, which would defeat the point of sampling); 0 = no cap.
SampledSubgraph SampleRadiusSubgraph(const Graph& g, uint32_t radius,
                                     Rng& rng, size_t max_vertices = 0);

/// Draws `count` independent samples (see Sec. 3.2: n = 0.25 (z/E)^2, e.g.
/// 400 for E = 5%, z = 1.96).
std::vector<SampledSubgraph> SampleRadiusSubgraphs(const Graph& g,
                                                   uint32_t radius,
                                                   size_t count, Rng& rng,
                                                   size_t max_vertices = 0);

/// The RNG stream of sample `index` under `master_seed`: a SplitMix64
/// finalizer over (seed, index) keeps the per-sample streams statistically
/// independent while every stream is a pure function of the master seed.
uint64_t DeriveSampleSeed(uint64_t master_seed, uint64_t index);

/// Parallel variant: sample i is drawn from Rng(DeriveSampleSeed(master_seed,
/// i)), so the result is identical for every pool size (including no pool) —
/// samples are expanded concurrently on `pool` when it has workers.
std::vector<SampledSubgraph> SampleRadiusSubgraphs(
    const Graph& g, uint32_t radius, size_t count, uint64_t master_seed,
    size_t max_vertices, ExecutorPool* pool);

/// The paper's sample-size formula: n = 0.5 * 0.5 * (z / E)^2.
size_t SampleSizeForError(double z, double error);

}  // namespace bigindex

#endif  // BIGINDEX_GRAPH_SAMPLING_H_
