#include "graph/binary_io.h"

#include <cstring>
#include <fstream>
#include <vector>

namespace bigindex {
namespace {

constexpr char kMagic[4] = {'B', 'I', 'G', 'X'};
constexpr uint32_t kVersion = 1;

// Sanity bound against corrupted counts (1 billion entities).
constexpr uint64_t kMaxCount = 1ull << 30;

template <typename T>
void Put(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool Get(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

Status WriteGraphBinary(const Graph& g, const LabelDictionary& dict,
                        std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  Put<uint32_t>(out, kVersion);

  // The graph references label ids < dict.size(); write the whole
  // dictionary so ids stay dense and meaningful on load.
  Put<uint64_t>(out, dict.size());
  for (LabelId l = 0; l < dict.size(); ++l) {
    const std::string& name = dict.Name(l);
    Put<uint32_t>(out, static_cast<uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
  }

  Put<uint64_t>(out, g.NumVertices());
  Put<uint64_t>(out, g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    Put<uint32_t>(out, g.label(v));
  }
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      Put<uint32_t>(out, u);
      Put<uint32_t>(out, v);
    }
  }
  if (!out) return Status::IOError("binary write failed");
  return Status::OK();
}

StatusOr<Graph> ReadGraphBinary(std::istream& in, LabelDictionary& dict) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad binary graph magic");
  }
  uint32_t version = 0;
  if (!Get(in, version) || version != kVersion) {
    return Status::Corruption("unsupported binary graph version");
  }

  uint64_t num_labels = 0;
  if (!Get(in, num_labels) || num_labels > kMaxCount) {
    return Status::Corruption("bad label count");
  }
  // Local id -> interned id (the target dictionary may already hold labels).
  std::vector<LabelId> remap(num_labels);
  std::string name;
  for (uint64_t i = 0; i < num_labels; ++i) {
    uint32_t len = 0;
    if (!Get(in, len) || len > (1u << 20)) {
      return Status::Corruption("bad label length");
    }
    name.resize(len);
    in.read(name.data(), len);
    if (!in) return Status::Corruption("truncated label table");
    remap[i] = dict.Intern(name);
  }

  uint64_t n = 0, m = 0;
  if (!Get(in, n) || !Get(in, m) || n > kMaxCount || m > kMaxCount) {
    return Status::Corruption("bad graph size header");
  }
  GraphBuilder builder;
  builder.Reserve(n, m);
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t l = 0;
    if (!Get(in, l)) return Status::Corruption("truncated vertex labels");
    if (l >= num_labels) return Status::Corruption("label id out of range");
    builder.AddVertex(remap[l]);
  }
  for (uint64_t i = 0; i < m; ++i) {
    uint32_t u = 0, v = 0;
    if (!Get(in, u) || !Get(in, v)) {
      return Status::Corruption("truncated edge section");
    }
    if (u >= n || v >= n) return Status::Corruption("edge out of range");
    builder.AddEdge(u, v);
  }
  return builder.Build();
}

Status SaveGraphBinaryFile(const Graph& g, const LabelDictionary& dict,
                           const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path);
  return WriteGraphBinary(g, dict, out);
}

StatusOr<Graph> LoadGraphBinaryFile(const std::string& path,
                                    LabelDictionary& dict) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  return ReadGraphBinary(in, dict);
}

}  // namespace bigindex
