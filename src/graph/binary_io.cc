#include "graph/binary_io.h"

#include <cstring>
#include <fstream>
#include <vector>

namespace bigindex {
namespace {

constexpr char kGraphMagic[4] = {'B', 'I', 'G', 'X'};
constexpr char kOntologyMagic[4] = {'B', 'I', 'G', 'O'};
constexpr uint32_t kVersion = 2;
/// Written natively; reads back as 0x04030201 across byte orders.
constexpr uint32_t kEndianMarker = 0x01020304u;

// Sanity bound against corrupted counts (1 billion entities).
constexpr uint64_t kMaxCount = 1ull << 30;

template <typename T>
void Put(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool Get(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(in);
}

void PutHeader(std::ostream& out, const char magic[4]) {
  out.write(magic, 4);
  Put<uint32_t>(out, kVersion);
  Put<uint32_t>(out, kEndianMarker);
}

Status CheckHeader(std::istream& in, const char magic[4], const char* what) {
  char got[4];
  in.read(got, sizeof(got));
  if (!in || std::memcmp(got, magic, sizeof(got)) != 0) {
    return Status::Corruption(std::string("bad binary ") + what + " magic");
  }
  uint32_t version = 0;
  if (!Get(in, version)) {
    return Status::Corruption(std::string("truncated ") + what + " header");
  }
  if (version == 1) {
    return Status::Corruption(
        std::string(what) +
        " uses binary format version 1 (no endianness marker); re-serialize "
        "with a current build");
  }
  if (version != kVersion) {
    return Status::Corruption("unsupported binary " + std::string(what) +
                              " version " + std::to_string(version) +
                              " (expected " + std::to_string(kVersion) + ")");
  }
  uint32_t endian = 0;
  if (!Get(in, endian)) {
    return Status::Corruption(std::string("truncated ") + what + " header");
  }
  if (endian != kEndianMarker) {
    return Status::Corruption(
        std::string(what) +
        " was written on a machine with different endianness");
  }
  return Status::OK();
}

void PutDictionary(std::ostream& out, const LabelDictionary& dict) {
  // Write the whole dictionary so ids stay dense and meaningful on load.
  Put<uint64_t>(out, dict.size());
  for (LabelId l = 0; l < dict.size(); ++l) {
    const std::string& name = dict.Name(l);
    Put<uint32_t>(out, static_cast<uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
  }
}

/// Reads the dictionary block into `remap`: file-local id -> interned id
/// (the target dictionary may already hold labels).
Status GetDictionary(std::istream& in, LabelDictionary& dict,
                     std::vector<LabelId>& remap) {
  uint64_t num_labels = 0;
  if (!Get(in, num_labels) || num_labels > kMaxCount) {
    return Status::Corruption("bad label count");
  }
  remap.resize(num_labels);
  std::string name;
  for (uint64_t i = 0; i < num_labels; ++i) {
    uint32_t len = 0;
    if (!Get(in, len) || len > (1u << 20)) {
      return Status::Corruption("bad label length");
    }
    name.resize(len);
    in.read(name.data(), len);
    if (!in) return Status::Corruption("truncated label table");
    remap[i] = dict.Intern(name);
  }
  return Status::OK();
}

}  // namespace

Status WriteGraphBinary(const Graph& g, const LabelDictionary& dict,
                        std::ostream& out) {
  PutHeader(out, kGraphMagic);
  PutDictionary(out, dict);

  Put<uint64_t>(out, g.NumVertices());
  Put<uint64_t>(out, g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    Put<uint32_t>(out, g.label(v));
  }
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      Put<uint32_t>(out, u);
      Put<uint32_t>(out, v);
    }
  }
  if (!out) return Status::IOError("binary write failed");
  return Status::OK();
}

StatusOr<Graph> ReadGraphBinary(std::istream& in, LabelDictionary& dict) {
  BIGINDEX_RETURN_IF_ERROR(CheckHeader(in, kGraphMagic, "graph"));

  std::vector<LabelId> remap;
  BIGINDEX_RETURN_IF_ERROR(GetDictionary(in, dict, remap));

  uint64_t n = 0, m = 0;
  if (!Get(in, n) || !Get(in, m) || n > kMaxCount || m > kMaxCount) {
    return Status::Corruption("bad graph size header");
  }
  GraphBuilder builder;
  builder.Reserve(n, m);
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t l = 0;
    if (!Get(in, l)) return Status::Corruption("truncated vertex labels");
    if (l >= remap.size()) return Status::Corruption("label id out of range");
    builder.AddVertex(remap[l]);
  }
  for (uint64_t i = 0; i < m; ++i) {
    uint32_t u = 0, v = 0;
    if (!Get(in, u) || !Get(in, v)) {
      return Status::Corruption("truncated edge section");
    }
    if (u >= n || v >= n) return Status::Corruption("edge out of range");
    builder.AddEdge(u, v);
  }
  return builder.Build();
}

Status SaveGraphBinaryFile(const Graph& g, const LabelDictionary& dict,
                           const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path);
  return WriteGraphBinary(g, dict, out);
}

StatusOr<Graph> LoadGraphBinaryFile(const std::string& path,
                                    LabelDictionary& dict) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  return ReadGraphBinary(in, dict);
}

Status WriteOntologyBinary(const Ontology& ontology,
                           const LabelDictionary& dict, std::ostream& out) {
  PutHeader(out, kOntologyMagic);
  PutDictionary(out, dict);

  Put<uint64_t>(out, ontology.NumEdges());
  for (LabelId type = 0; type < ontology.LabelSlots(); ++type) {
    for (LabelId super : ontology.Supertypes(type)) {
      Put<uint32_t>(out, type);
      Put<uint32_t>(out, super);
    }
  }
  if (!out) return Status::IOError("binary write failed");
  return Status::OK();
}

StatusOr<Ontology> ReadOntologyBinary(std::istream& in,
                                      LabelDictionary& dict) {
  BIGINDEX_RETURN_IF_ERROR(CheckHeader(in, kOntologyMagic, "ontology"));

  std::vector<LabelId> remap;
  BIGINDEX_RETURN_IF_ERROR(GetDictionary(in, dict, remap));

  uint64_t num_edges = 0;
  if (!Get(in, num_edges) || num_edges > kMaxCount) {
    return Status::Corruption("bad ontology edge count");
  }
  OntologyBuilder builder;
  for (uint64_t i = 0; i < num_edges; ++i) {
    uint32_t sub = 0, super = 0;
    if (!Get(in, sub) || !Get(in, super)) {
      return Status::Corruption("truncated ontology edge section");
    }
    if (sub >= remap.size() || super >= remap.size()) {
      return Status::Corruption("ontology type id out of range");
    }
    builder.AddSupertypeEdge(remap[sub], remap[super]);
  }
  return builder.Build();
}

}  // namespace bigindex
