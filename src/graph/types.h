// Fundamental identifier types shared by every graph-related module.

#ifndef BIGINDEX_GRAPH_TYPES_H_
#define BIGINDEX_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>

namespace bigindex {

/// Dense vertex identifier within one Graph (layer-local: vertex 7 of layer 2
/// and vertex 7 of layer 0 are unrelated).
using VertexId = uint32_t;

/// Interned label identifier, resolved through a LabelDictionary.
using LabelId = uint32_t;

/// Sentinel for "no vertex" / "no label".
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();
inline constexpr LabelId kInvalidLabel = std::numeric_limits<LabelId>::max();

/// Sentinel distance for "unreachable".
inline constexpr uint32_t kInfDistance = std::numeric_limits<uint32_t>::max();

}  // namespace bigindex

#endif  // BIGINDEX_GRAPH_TYPES_H_
