// Umbrella header for the BiG-index library.
//
// BiG-index (Jiang, Choi, Xu, Bhowmick — "A Generic Ontology Framework for
// Indexing Keyword Search on Massive Graphs", TKDE'19 / ICDE'21) is a
// generic, ontology-driven hierarchical index for keyword search on labeled
// directed graphs. See README.md for a tour and examples/ for runnable code.
//
// Typical usage:
//
//   #include "bigindex.h"
//   using namespace bigindex;
//
//   LabelDictionary dict;
//   Graph g = ...;                 // GraphBuilder or graph_io
//   Ontology ont = ...;            // OntologyBuilder or ontology_io
//   auto index = BigIndex::Build(std::move(g), &ont);
//
//   QueryEngine engine(std::move(index).value());
//   auto result = engine.Evaluate(
//       {.keywords = {dict.Find("Club"), dict.Find("Player")},
//        .algorithm = "blinks"});

#ifndef BIGINDEX_BIGINDEX_H_
#define BIGINDEX_BIGINDEX_H_

#include "bisim/bisimulation.h"     // IWYU pragma: export
#include "bisim/maintenance.h"      // IWYU pragma: export
#include "core/answer_gen.h"        // IWYU pragma: export
#include "core/big_index.h"         // IWYU pragma: export
#include "core/config_search.h"     // IWYU pragma: export
#include "core/cost_model.h"        // IWYU pragma: export
#include "core/evaluator.h"         // IWYU pragma: export
#include "core/index_image.h"       // IWYU pragma: export
#include "core/index_io.h"          // IWYU pragma: export
#include "core/query.h"             // IWYU pragma: export
#include "core/search_algorithm.h"  // IWYU pragma: export
#include "engine/executor.h"        // IWYU pragma: export
#include "engine/query_context.h"   // IWYU pragma: export
#include "engine/query_engine.h"    // IWYU pragma: export
#include "graph/binary_io.h"        // IWYU pragma: export
#include "graph/csr.h"              // IWYU pragma: export
#include "graph/graph.h"            // IWYU pragma: export
#include "graph/graph_io.h"         // IWYU pragma: export
#include "graph/label_dictionary.h" // IWYU pragma: export
#include "graph/sampling.h"         // IWYU pragma: export
#include "graph/traversal.h"        // IWYU pragma: export
#include "obs/metrics.h"            // IWYU pragma: export
#include "obs/trace.h"              // IWYU pragma: export
#include "ontology/config.h"        // IWYU pragma: export
#include "ontology/ontology.h"      // IWYU pragma: export
#include "ontology/ontology_io.h"   // IWYU pragma: export
#include "ontology/typing.h"        // IWYU pragma: export
#include "search/answer.h"          // IWYU pragma: export
#include "search/bidirectional.h"   // IWYU pragma: export
#include "search/bkws.h"            // IWYU pragma: export
#include "search/blinks.h"          // IWYU pragma: export
#include "search/partitioner.h"     // IWYU pragma: export
#include "search/rclique.h"         // IWYU pragma: export
#include "server/answer_cache.h"    // IWYU pragma: export
#include "server/line_protocol.h"   // IWYU pragma: export
#include "server/metrics_http.h"    // IWYU pragma: export
#include "server/protocol_client.h" // IWYU pragma: export
#include "server/query_service.h"   // IWYU pragma: export
#include "server/search_service.h"  // IWYU pragma: export
#include "server/service_stats.h"   // IWYU pragma: export
#include "server/tcp_server.h"      // IWYU pragma: export
#include "shard/boundary.h"         // IWYU pragma: export
#include "shard/in_process_substrate.h"  // IWYU pragma: export
#include "shard/remote_substrate.h" // IWYU pragma: export
#include "shard/shard_build.h"      // IWYU pragma: export
#include "shard/sharded_service.h"  // IWYU pragma: export
#include "shard/substrate.h"        // IWYU pragma: export
#include "update/incremental.h"     // IWYU pragma: export
#include "update/live_updater.h"    // IWYU pragma: export
#include "update/maintain.h"        // IWYU pragma: export
#include "update/version_store.h"   // IWYU pragma: export
#include "util/random.h"            // IWYU pragma: export
#include "util/status.h"            // IWYU pragma: export
#include "util/timer.h"             // IWYU pragma: export
#include "workload/datasets.h"      // IWYU pragma: export
#include "workload/graph_gen.h"     // IWYU pragma: export
#include "workload/ontology_gen.h"  // IWYU pragma: export
#include "workload/query_gen.h"     // IWYU pragma: export

#endif  // BIGINDEX_BIGINDEX_H_
